//! The CLI subcommands.

use simprof_core::{input_sensitivity, LiveAnalyzer, LiveConfig, SimProf, SimProfConfig};
use simprof_engine::MethodId;
use simprof_profiler::{SharedSink, UnitSink};
use simprof_stats::split_seed;
use simprof_trace::{TraceMeta, TraceReader, TraceWriter};
use simprof_workloads::{GraphInput, Kronecker, WorkloadConfig, WorkloadId};

use crate::args::{Options, Scale};
use crate::bundle::{TraceBundle, FORMAT_VERSION};
use crate::input::TraceInput;

fn workload_config(opts: &Options) -> WorkloadConfig {
    match opts.scale {
        Scale::Paper => WorkloadConfig::paper(opts.seed),
        Scale::Tiny => WorkloadConfig::tiny(opts.seed),
    }
}

fn find_workload(label: &str) -> Result<WorkloadId, String> {
    WorkloadId::all().into_iter().find(|w| w.label() == label).ok_or_else(|| {
        let labels: Vec<String> = WorkloadId::all().iter().map(|w| w.label()).collect();
        format!("unknown workload `{label}`; available: {}", labels.join(", "))
    })
}

fn pipeline(opts: &Options) -> SimProf {
    SimProf::new(SimProfConfig { seed: opts.seed, ..Default::default() })
}

/// A per-command observability window: a job-scoped
/// [`simprof_obs::ObsContext`] installed on the calling thread (the
/// parallel substrate propagates it to pool workers), so concurrent
/// commands — including the service layer's jobs — record independently.
pub(crate) struct ObsWindow {
    ctx: simprof_obs::ObsContext,
    installed: simprof_obs::ContextGuard,
}

impl ObsWindow {
    /// Stops collecting and assembles the report skeleton.
    pub(crate) fn finish(self) -> simprof_obs::RunReport {
        let ObsWindow { ctx, installed } = self;
        drop(installed);
        ctx.finish_report()
    }
}

/// Opens an observability window when any obs output (`--report`,
/// `--events`, `--timeline`) was requested, installing the streaming JSONL
/// event sink when `--events` names a path. Returns `None` — and leaves
/// every instrumentation hook a single relaxed atomic load — when no obs
/// output was asked for.
fn obs_session(opts: &Options) -> Result<Option<ObsWindow>, String> {
    if opts.report.is_none() && opts.events.is_none() && opts.timeline.is_none() {
        return Ok(None);
    }
    let ctx = simprof_obs::ObsContext::new();
    if let Some(path) = &opts.events {
        let sink = simprof_obs::JsonlEventWriter::create(std::path::Path::new(path))?;
        ctx.install_sink(Box::new(sink));
    }
    let installed = ctx.install();
    Ok(Some(ObsWindow { ctx, installed }))
}

/// Writes the requested obs outputs from a finished report: `--report`
/// (versioned run-report JSON) and `--timeline` (Chrome-trace JSON). The
/// `--events` log was already streamed to disk during the run; this only
/// confirms it.
fn write_obs_outputs(opts: &Options, report: &simprof_obs::RunReport) -> Result<(), String> {
    if let Some(path) = &opts.report {
        std::fs::write(path, report.to_json_pretty()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote run report {path}");
    }
    if let Some(path) = &opts.timeline {
        simprof_obs::write_chrome_trace(report, std::path::Path::new(path))?;
        println!("wrote timeline {path} (chrome://tracing / Perfetto JSON)");
    }
    if let Some(path) = &opts.events {
        println!("wrote event log {path} (JSONL, schema v{})", simprof_obs::EVENT_SCHEMA_VERSION);
    }
    Ok(())
}

/// `simprof list` — the Table I matrix.
pub fn list(_opts: &Options) -> Result<(), String> {
    println!("{:<10} {:<20} framework", "label", "benchmark");
    for w in WorkloadId::all() {
        println!("{:<10} {:<20} {:?}", w.label(), w.benchmark.abbrev(), w.framework);
    }
    Ok(())
}

fn scale_name(opts: &Options) -> String {
    match opts.scale {
        Scale::Paper => "paper".into(),
        Scale::Tiny => "tiny".into(),
    }
}

/// `simprof profile -w <label> [-o trace.sptrc | -o trace.json]
/// [--report r.json] [--events e.jsonl] [--timeline t.json]`.
///
/// The output format follows the extension: a `.json` path writes the
/// legacy monolithic [`TraceBundle`]; any other path (conventionally
/// `.sptrc`) streams the chunked format — the trace writer is attached to
/// the profiler as a [`UnitSink`], so units hit the disk while the engine
/// is still running instead of being serialized in one blob afterwards.
///
/// Any of `--report`/`--events`/`--timeline` runs the profile inside an
/// observability session: `--events` streams the JSONL event log while the
/// engine runs, `--timeline` converts the finished span tree (including
/// `parallel.worker` slices from the thread pool) to Chrome-trace JSON.
///
/// `--codec raw|lz` writes the v3 layout with per-frame compression (see
/// `simprof_trace::codec`); without it the trace stays on the v2 layout,
/// byte-identical to previous releases.
pub fn profile(opts: &Options) -> Result<(), String> {
    let label = opts.require_workload("profile")?;
    let id = find_workload(label)?;
    let cfg = workload_config(opts);
    let session = obs_session(opts)?;

    let streaming_out = match &opts.output {
        Some(path) if !path.ends_with(".json") => {
            let meta = TraceMeta {
                label: label.to_owned(),
                seed: opts.seed,
                scale: scale_name(opts),
                unit_instrs: cfg.profiler.unit_instrs,
                snapshot_instrs: cfg.profiler.snapshot_instrs,
                core: cfg.profiler.core,
            };
            let writer = match opts.codec {
                None => TraceWriter::create(path, &meta)?,
                Some(codec) => TraceWriter::create_compressed(path, &meta, codec)?,
            };
            Some((path.clone(), SharedSink::new(writer)))
        }
        _ => None,
    };
    if opts.codec.is_some() && streaming_out.is_none() {
        return Err("--codec requires a chunked trace output (-o <file.sptrc>)".into());
    }
    let sinks: Vec<Box<dyn UnitSink>> = match &streaming_out {
        Some((_, writer)) => vec![Box::new(writer.clone())],
        None => Vec::new(),
    };

    let out = {
        let _span = simprof_obs::span!("cli.profile");
        id.run_full_with_sinks(&cfg, sinks)
    };
    println!(
        "profiled {label}: {} sampling units × {} instructions ({} methods, {} tasks)",
        out.trace.units.len(),
        out.trace.unit_instrs,
        out.registry.len(),
        out.total_tasks
    );
    println!("oracle CPI {:.4}", out.trace.oracle_cpi());

    match (&opts.output, streaming_out) {
        (Some(_), Some((path, writer))) => {
            // Graceful degradation: a trace sink that latched an I/O error
            // (or fails while sealing the footer) must not take the profile
            // run down with it — the units also live in the manager's
            // in-memory collector, so the numeric output above is complete
            // either way. Warn, point at salvage, and exit successfully.
            let sealed = writer.lock().finish(&out.registry);
            match sealed {
                Ok(footer) => match opts.codec {
                    Some(codec) => println!(
                        "wrote {path} ({} units, chunked v3, {} codec)",
                        footer.unit_count,
                        codec.name()
                    ),
                    None => println!(
                        "wrote {path} ({} units, chunked streaming format)",
                        footer.unit_count
                    ),
                },
                Err(e) => {
                    let retries = writer.lock().retries();
                    eprintln!(
                        "warning: trace sink degraded after {retries} retries ({e}); \
                         results above come from the in-memory trace. {path} may be \
                         unsealed — recover it with `simprof trace-repair -i {path} -o <out>`"
                    );
                }
            }
        }
        (Some(path), None) => {
            let bundle = TraceBundle {
                version: FORMAT_VERSION,
                label: label.to_owned(),
                seed: opts.seed,
                scale: scale_name(opts),
                trace: out.trace,
                registry: out.registry,
            };
            bundle.save(path)?;
            println!("wrote {path} (legacy JSON bundle)");
        }
        _ => println!("(no -o/--output given; trace not saved)"),
    }

    if let Some(session) = session {
        let report = session.finish().with_section(
            "config",
            serde_json::json!({
                "workload": label,
                "scale": scale_name(opts),
                "seed": opts.seed,
            }),
        );
        write_obs_outputs(opts, &report)?;
    }
    Ok(())
}

/// `simprof analyze -i trace.sptrc|trace.json` (format auto-detected; a
/// chunked trace streams through the analysis without being materialized).
pub fn analyze(opts: &Options) -> Result<(), String> {
    let input = TraceInput::open(opts.require_input("analyze")?)?;
    let analysis = input.analyze(&pipeline(opts))?;
    println!(
        "{}: {} units, oracle CPI {:.4}, {} phases",
        input.label,
        analysis.cpis.len(),
        analysis.oracle_cpi(),
        analysis.k()
    );
    println!(
        "homogeneity: population CoV {:.3}, weighted {:.3}, max {:.3}",
        analysis.cov.population, analysis.cov.weighted, analysis.cov.max
    );
    for h in 0..analysis.k() {
        let s = &analysis.stats[h];
        println!(
            "  phase {h}: {:>5.1}% of units | CPI {:.3} ± {:.3} (CoV {:.3})",
            analysis.weights[h] * 100.0,
            s.mean,
            s.stddev,
            s.cov
        );
    }
    Ok(())
}

/// `simprof select -i trace.sptrc|trace.json -n 20 [-o points.json]`.
pub fn select(opts: &Options) -> Result<(), String> {
    let input = TraceInput::open(opts.require_input("select")?)?;
    let analysis = input.analyze(&pipeline(opts))?;
    let points = analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E));
    let est = analysis.estimate(&points, opts.z);
    let oracle = analysis.oracle_cpi();
    println!(
        "selected {} simulation points across {} phases (allocation {:?})",
        points.len(),
        analysis.k(),
        points.allocation
    );
    println!("unit ids: {:?}", points.points);
    println!(
        "estimated CPI {:.4} ± {:.4} (z = {}), oracle {:.4}, error {:.2}%",
        est.mean_cpi,
        opts.z * est.se,
        opts.z,
        oracle,
        (est.mean_cpi - oracle).abs() / oracle * 100.0
    );
    if let Some(path) = &opts.output {
        let json = serde_json::json!({
            "label": input.label,
            "points": points.points,
            "per_phase": points.per_phase,
            "allocation": points.allocation,
            "estimate": est,
        });
        let text =
            serde_json::to_string_pretty(&json).map_err(|e| format!("encode points: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `simprof run -w <label> [-n 20] [--live [--target-rel-err 0.05]]
/// [--report run.json] [-o points.json]` — the whole pipeline end to end:
/// profile the workload on the simulated substrate, form phases, select
/// simulation points, and estimate.
///
/// With `--live`, phases are formed *online* while the profiler runs
/// (DESIGN.md §16): a [`LiveAnalyzer`] sink seeds centers from a warmup
/// window, classifies each unit as it closes, re-forms on drift, and —
/// with `--target-rel-err` — tracks the live stratified CI so profiling
/// stops as soon as the target half-width is met. With stopping disabled
/// the printed analysis is bit-identical to the offline path.
///
/// With `--report` (or `--events`/`--timeline`), the pipeline executes
/// inside an observability session: the versioned JSON run report (span
/// tree, metrics, phase summary, Eq. 1 allocation table, estimate) goes to
/// `--report`, the streaming JSONL event log to `--events`, and the
/// Chrome-trace timeline to `--timeline`. Without any of them, no session
/// starts and every instrumentation hook stays a single relaxed atomic
/// load; either way the numeric output is identical — reports carry
/// timings out, nothing feeds back in.
pub fn run_workload(opts: &Options) -> Result<(), String> {
    let label = opts.require_workload("run")?;
    let id = find_workload(label)?;
    let cfg = workload_config(opts);

    let session = obs_session(opts)?;

    let mut live_report = None;
    let (units_profiled, analysis) = if opts.live {
        let sp_cfg = SimProfConfig {
            seed: opts.seed,
            live: Some(LiveConfig {
                target_rel_err: opts.target_rel_err.unwrap_or(0.0),
                z: opts.z,
                ..Default::default()
            }),
            ..Default::default()
        };
        let shared = SharedSink::new(LiveAnalyzer::new(sp_cfg, cfg.profiler));
        let out = {
            let _span = simprof_obs::span!("cli.profile");
            id.run_full_with_sinks(&cfg, vec![Box::new(shared.clone())])
        };
        let (analysis, report) = {
            let _span = simprof_obs::span!("cli.phase_formation");
            shared.lock().finalize().map_err(|e| format!("analyze: {e}"))?
        };
        live_report = Some(report);
        ((out.trace.units.len(), out.trace.unit_instrs), analysis)
    } else {
        let out = {
            let _span = simprof_obs::span!("cli.profile");
            id.run_full(&cfg)
        };
        let analysis = {
            let _span = simprof_obs::span!("cli.phase_formation");
            pipeline(opts).analyze(&out.trace).map_err(|e| format!("analyze: {e}"))?
        };
        ((out.trace.units.len(), out.trace.unit_instrs), analysis)
    };
    println!(
        "profiled {label}: {} sampling units × {} instructions",
        units_profiled.0, units_profiled.1
    );
    if let Some(r) = &live_report {
        if r.stopped_early {
            println!(
                "live: stopped early at unit {} ({} units profiled); half-width {:.5} met \
                 target {:.1}% of mean CPI",
                r.stop_unit.unwrap_or(0),
                r.units_profiled,
                r.live_half_width.unwrap_or(0.0),
                opts.target_rel_err.unwrap_or(0.0) * 100.0
            );
        } else {
            println!(
                "live: profiled to completion ({} units); {} phases tracked online, \
                 {} re-formation(s), drift {:.3}",
                r.units_profiled, r.live_k, r.reformations, r.drift
            );
        }
    }
    let points = {
        let _span = simprof_obs::span!("cli.sampling");
        analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E))
    };
    let est = analysis.estimate(&points, opts.z);
    let oracle = analysis.oracle_cpi();
    println!(
        "{} phases; selected {} points (allocation {:?})",
        analysis.k(),
        points.len(),
        points.allocation
    );
    println!(
        "estimated CPI {:.4} ± {:.4} (z = {}), oracle {:.4}, error {:.2}%",
        est.mean_cpi,
        opts.z * est.se,
        opts.z,
        oracle,
        simprof_core::relative_error(est.mean_cpi, oracle) * 100.0
    );

    if let Some(path) = &opts.output {
        let json = serde_json::json!({
            "label": label,
            "points": points.points,
            "per_phase": points.per_phase,
            "allocation": points.allocation,
            "estimate": est,
        });
        let text =
            serde_json::to_string_pretty(&json).map_err(|e| format!("encode points: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }

    if let Some(session) = session {
        let report = session
            .finish()
            .with_section(
                "config",
                serde_json::json!({
                    "workload": label,
                    "scale": match opts.scale { Scale::Paper => "paper", Scale::Tiny => "tiny" },
                    "seed": opts.seed,
                    "points": opts.points,
                    "z": opts.z,
                }),
            )
            .with_section(
                "phases",
                serde_json::json!({
                    "stats": serde_json::to_value(&analysis.stats),
                    "homogeneity": serde_json::to_value(&analysis.cov),
                    "k_scores": serde_json::to_value(&analysis.model.k_scores),
                }),
            )
            .with_section("allocation", serde_json::to_value(&analysis.allocation_table(&points)))
            .with_section("estimate", serde_json::to_value(&est));
        let report = match &live_report {
            Some(live) => report.with_section("live", serde_json::to_value(live)),
            None => report,
        };
        write_obs_outputs(opts, &report)?;
    }
    Ok(())
}

/// `simprof size -i trace.sptrc|trace.json --error 0.05 [--z 3]`.
pub fn size(opts: &Options) -> Result<(), String> {
    let input = TraceInput::open(opts.require_input("size")?)?;
    let analysis = input.analyze(&pipeline(opts))?;
    let n = analysis.required_size(opts.z, opts.error);
    println!(
        "{}: {} of {} units needed for {:.1}% relative error at z = {}",
        input.label,
        n,
        input.unit_count(),
        opts.error * 100.0,
        opts.z
    );
    Ok(())
}

/// `simprof report -i trace.sptrc|trace.json` — phases with their
/// characteristic methods.
pub fn report(opts: &Options) -> Result<(), String> {
    let input = TraceInput::open(opts.require_input("report")?)?;
    let analysis = input.analyze(&pipeline(opts))?;
    println!("{}: {} phases", input.label, analysis.k());
    for h in 0..analysis.k() {
        let s = &analysis.stats[h];
        println!(
            "phase {h}: weight {:.1}%, CPI {:.3} (CoV {:.3})",
            analysis.weights[h] * 100.0,
            s.mean,
            s.cov
        );
        for (m, w) in analysis.model.top_methods(h, 3) {
            println!("    {:.2}  {}", w, input.registry.name(MethodId(m as u32)));
        }
    }
    Ok(())
}

/// `simprof validate -i trace.json -n 6` — replay each selected simulation
/// point in isolation (fast-forward, cold caches, one-unit warm-up) and
/// compare replayed CPIs against the profile — the end-to-end check that
/// the selected points are actually simulatable.
pub fn validate(opts: &Options) -> Result<(), String> {
    let bundle = TraceInput::open(opts.require_input("validate")?)?.into_bundle()?;
    let id = find_workload(&bundle.label)?;
    let cfg = match bundle.scale.as_str() {
        "tiny" => WorkloadConfig::tiny(bundle.seed),
        _ => WorkloadConfig::paper(bundle.seed),
    };
    let analysis = pipeline(opts).analyze(&bundle.trace).map_err(|e| format!("analyze: {e}"))?;
    let n = opts.points.min(8); // each replay re-runs the job
    let points = analysis.select_points(n, split_seed(opts.seed, 0x5E1E));
    let unit_instrs = bundle.trace.unit_instrs;
    let warmup = unit_instrs;
    println!(
        "{}: replaying {} points (cold restart, {} instruction warm-up)",
        bundle.label,
        points.len(),
        warmup
    );
    println!("{:>7} {:>10} {:>10} {:>8}", "unit", "profiled", "replayed", "delta");
    let mut total = 0.0;
    let mut count = 0.0;
    for &unit in &points.points {
        let profiled = analysis.cpis[unit as usize];
        match id.replay_unit(&cfg, unit, unit_instrs, warmup) {
            Some(replayed) => {
                let delta = (replayed - profiled).abs() / profiled;
                total += delta;
                count += 1.0;
                println!("{unit:>7} {profiled:>10.4} {replayed:>10.4} {:>7.1}%", delta * 100.0);
            }
            None => println!("{unit:>7} {profiled:>10.4} {:>10} {:>8}", "-", "n/a"),
        }
    }
    if count > 0.0 {
        println!("mean per-point replay deviation: {:.1}%", total / count * 100.0);
    }
    Ok(())
}

/// `simprof export -i trace.json -n 20 -o manifest.json` — write the
/// simulation manifest a detailed simulator consumes (instruction
/// intervals, warm-up, phase weights for re-aggregation).
pub fn export(opts: &Options) -> Result<(), String> {
    let bundle = TraceInput::open(opts.require_input("export")?)?.into_bundle()?;
    let analysis = pipeline(opts).analyze(&bundle.trace).map_err(|e| format!("analyze: {e}"))?;
    let points = analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E));
    let manifest = simprof_core::SimulationManifest::build(&analysis, &bundle.trace, &points)
        .map_err(|e| format!("export: {e}"))?;
    println!(
        "{}: {} points → {} instructions of detailed simulation ({:.1}% of the job)",
        bundle.label,
        manifest.points.len(),
        manifest.simulated_instrs(),
        manifest.simulated_instrs() as f64 / bundle.trace.total_instrs() as f64 * 100.0
    );
    for p in manifest.points.iter().take(5) {
        let method = p
            .dominant_method
            .map(|m| bundle.registry.name(MethodId(m)).to_owned())
            .unwrap_or_else(|| "?".into());
        println!(
            "  unit {:>5}: instrs [{}, {}) warmup {} | phase {} (w {:.2}) | {}",
            p.unit, p.start_instr, p.end_instr, p.warmup_instrs, p.phase, p.phase_weight, method
        );
    }
    if manifest.points.len() > 5 {
        println!("  ... and {} more", manifest.points.len() - 5);
    }
    if let Some(path) = &opts.output {
        let text =
            serde_json::to_string_pretty(&manifest).map_err(|e| format!("encode manifest: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `simprof compare -i trace.json -n 20` — all sampling approaches on one
/// trace (a single-workload Fig. 7 row).
pub fn compare(opts: &Options) -> Result<(), String> {
    use simprof_core::{
        baselines, relative_error, second_points_by_cycles, srs_points, systematic_points,
    };
    let bundle = TraceInput::open(opts.require_input("compare")?)?.into_bundle()?;
    let analysis = pipeline(opts).analyze(&bundle.trace).map_err(|e| format!("analyze: {e}"))?;
    let oracle = analysis.oracle_cpi();
    let n = opts.points;
    println!(
        "{}: oracle CPI {:.4}, {} units, {} phases",
        bundle.label,
        oracle,
        bundle.trace.units.len(),
        analysis.k()
    );
    println!("{:<12} {:>8} {:>10} {:>8}", "approach", "points", "CPI", "error");

    let budget = bundle.trace.total_cycles() / 5;
    let second = second_points_by_cycles(&bundle.trace, budget);
    let reps = 20u64;
    let mut rows: Vec<(&str, usize, f64)> =
        vec![("SECOND", second.points.len(), second.predicted_cpi)];
    let sys = systematic_points(&bundle.trace, n, 0);
    rows.push(("SYSTEMATIC", sys.points.len(), sys.predicted_cpi));
    let mut srs_cpi = 0.0;
    let mut sp_cpi = 0.0;
    for rep in 0..reps {
        let seed = split_seed(opts.seed, 0xC0 + rep);
        srs_cpi += srs_points(&bundle.trace, n, seed).predicted_cpi;
        sp_cpi += baselines::simprof_points(&analysis.model, &bundle.trace, n, seed).predicted_cpi;
    }
    rows.push(("SRS (avg)", n, srs_cpi / reps as f64));
    let code = baselines::code_points(&analysis.model, &bundle.trace);
    rows.push(("CODE", code.points.len(), code.predicted_cpi));
    rows.push(("SimProf (avg)", n, sp_cpi / reps as f64));
    for (name, pts, cpi) in rows {
        println!(
            "{:<12} {:>8} {:>10.4} {:>7.2}%",
            name,
            pts,
            cpi,
            relative_error(cpi, oracle) * 100.0
        );
    }
    Ok(())
}

/// `simprof hybrid -i trace.json -n 20` — the SimProf × systematic
/// estimator at strides 1/2/5/10, with the detailed-simulation budget each
/// stride needs.
pub fn hybrid(opts: &Options) -> Result<(), String> {
    let bundle = TraceInput::open(opts.require_input("hybrid")?)?.into_bundle()?;
    let analysis = pipeline(opts).analyze(&bundle.trace).map_err(|e| format!("analyze: {e}"))?;
    let oracle = analysis.oracle_cpi();
    let points = analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E));
    println!(
        "{}: {} points over {} phases; oracle CPI {:.4}",
        bundle.label,
        points.len(),
        analysis.k(),
        oracle
    );
    println!(
        "{:>7} {:>10} {:>10} {:>14} {:>12}",
        "stride", "CPI", "error", "sim instrs", "reduction"
    );
    for stride in [1usize, 2, 5, 10] {
        let h = simprof_core::estimate_hybrid(
            &bundle.trace,
            &analysis.model.assignments,
            &points,
            stride,
            opts.z,
        );
        println!(
            "{:>7} {:>10.4} {:>9.2}% {:>14} {:>11.1}%",
            stride,
            h.mean_cpi,
            (h.mean_cpi - oracle).abs() / oracle * 100.0,
            h.simulated_instrs,
            h.slice_reduction() * 100.0
        );
    }
    Ok(())
}

/// `simprof trace-info -i trace.sptrc|trace.json` — trace metadata without
/// an analysis pass.
///
/// For a v2 chunked trace this is O(1) in trace size: the header frame is
/// read from the front and the footer is located through the 12-byte trailer
/// at the end — no unit chunk is ever decoded. A v3 trace adds one streaming
/// pass over its chunk frames to report the stored-vs-raw compression ratio.
/// Legacy bundles must be parsed whole (the format has no summary section),
/// which is itself a reason to prefer the chunked format.
pub fn trace_info(opts: &Options) -> Result<(), String> {
    let path = opts.require_input("trace-info")?;
    if opts.salvage {
        return trace_info_salvage(path);
    }
    let input = TraceInput::open(path)?;
    match input.footer() {
        Some(footer) => {
            println!("{path}: chunked trace (schema v{})", footer.version);
            if footer.version >= 3 {
                // The codec list still comes from the header + footer frames
                // alone, but the stored-vs-raw ratio needs every chunk frame's
                // length fields, so this branch streams the shard once
                // (payloads are decoded, units are discarded).
                let mut reader = TraceReader::open(path)?;
                reader.footer()?;
                println!("  frame codecs    {}", reader.codecs_seen().join(", "));
                while reader.next_unit()?.is_some() {}
                let (stored, raw) = reader.payload_bytes();
                let ratio = if raw == 0 { 1.0 } else { stored as f64 / raw as f64 };
                println!(
                    "  payload bytes   {stored} stored / {raw} raw ({:.1}% of raw)",
                    ratio * 100.0
                );
            }
            println!("  workload        {}", input.label);
            println!("  seed            {}", input.seed);
            println!("  scale           {}", input.scale);
            println!("  units           {}", footer.unit_count);
            println!("  unit size       {} instructions", input.unit_instrs());
            println!("  method universe {}", footer.method_universe);
            println!("  methods interned {}", footer.registry.len());
            println!("  total instrs    {}", footer.total_instrs);
            println!("  total cycles    {}", footer.total_cycles);
            if footer.total_instrs > 0 {
                println!(
                    "  aggregate CPI   {:.4}",
                    footer.total_cycles as f64 / footer.total_instrs as f64
                );
            }
            println!("  truncated units {}", footer.truncated_units);
            println!("  dropped snaps   {}", footer.dropped_snapshots);
        }
        None => {
            println!("{path}: legacy JSON bundle (v{FORMAT_VERSION})");
            println!("  workload        {}", input.label);
            println!("  seed            {}", input.seed);
            println!("  scale           {}", input.scale);
            println!("  units           {}", input.unit_count());
            println!("  unit size       {} instructions", input.unit_instrs());
            println!("  methods interned {}", input.registry.len());
        }
    }
    Ok(())
}

/// `simprof trace-info --salvage -i damaged.sptrc` — forward-scan a damaged
/// chunked trace (missing trailer, truncated tail, flipped bytes) instead of
/// trusting the footer, and report exactly what survives: every frame whose
/// checksum verifies is decoded, everything else is resynced past.
fn trace_info_salvage(path: &str) -> Result<(), String> {
    let s = TraceReader::open_salvage(path)?;
    let r = &s.report;
    println!("{path}: salvage scan (schema v{}, {} bytes)", r.layout_version, r.file_bytes);
    println!("  state           {}", if r.clean { "clean" } else { "damaged" });
    println!(
        "  header          {}",
        if r.header_recovered { "recovered" } else { "lost (metadata reconstructed)" }
    );
    println!(
        "  footer          {}",
        if r.footer_found { "found" } else { "missing (synthesized from recovered units)" }
    );
    println!("  units recovered {} (in {} chunks)", r.recovered_units, r.recovered_chunks);
    println!("  bad frames      {}", r.bad_frames);
    println!("  resyncs         {}", r.resyncs);
    println!("  bytes skipped   {}", r.skipped_bytes);
    println!("  workload        {}", s.meta.label);
    println!("  seed            {}", s.meta.seed);
    println!("  scale           {}", s.meta.scale);
    println!("  total instrs    {}", s.footer.total_instrs);
    println!("  total cycles    {}", s.footer.total_cycles);
    if !r.clean {
        println!("rewrite into a sealed file with `simprof trace-repair -i {path} -o <out>`");
    }
    Ok(())
}

/// `simprof trace-repair -i damaged.sptrc -o repaired.sptrc [--codec lz]`
/// — salvage a damaged chunked trace and rewrite every recovered unit into
/// a fresh, footer-sealed file that the ordinary reader accepts (schema v2
/// by default, compressed v3 under `--codec`).
///
/// Repair is lossless over what survived: units from intact chunk frames
/// round-trip bit-identically; units whose frames failed their checksum are
/// gone (they are unrecoverable by construction) and are accounted for in
/// the printed report rather than silently absorbed.
pub fn trace_repair(opts: &Options) -> Result<(), String> {
    let input = opts.require_input("trace-repair")?;
    let out_path = opts
        .output
        .as_deref()
        .ok_or_else(|| "`trace-repair` requires -o/--output <repaired.sptrc>".to_string())?;
    let s = TraceReader::open_salvage(input)?;
    let r = &s.report;
    println!(
        "{input}: recovered {} units in {} chunks from {} bytes \
         ({} bad frames, {} resyncs, {} bytes skipped)",
        r.recovered_units,
        r.recovered_chunks,
        r.file_bytes,
        r.bad_frames,
        r.resyncs,
        r.skipped_bytes
    );
    if r.clean {
        println!("  input was already clean; rewriting it anyway");
    }
    if !r.header_recovered {
        println!("  header frame lost; metadata reconstructed from the recovered units");
    }
    let mut writer = match opts.codec {
        None => TraceWriter::create(out_path, &s.meta)?,
        Some(codec) => TraceWriter::create_compressed(out_path, &s.meta, codec)?,
    };
    for unit in &s.units {
        writer.push(unit);
    }
    let footer = writer.finish(&s.footer.registry)?;
    println!(
        "wrote {out_path} ({} units, sealed schema v{})",
        footer.unit_count,
        writer.layout_version()
    );
    Ok(())
}

/// Renders one job outcome as the line `serve` prints for it.
fn serve_outcome_line(
    spec: &simprof_service::JobSpec,
    result: &Result<simprof_service::JobOutcome, String>,
) -> String {
    match result {
        Ok(o) => {
            let mem = match o.mem_cap_bytes {
                Some(cap) => format!(
                    "peak {} of {} budget bytes{}",
                    o.peak_bytes,
                    cap,
                    if o.within_cap { "" } else { " — OVER BUDGET" }
                ),
                None => format!("peak {} bytes", o.peak_bytes),
            };
            format!(
                "  job {:<16} ok: {} units, {} bytes -> {} [tenant {}] ({} ms, {mem})",
                o.id, o.units, o.trace_bytes, o.shard, o.tenant, o.wall_ms
            )
        }
        Err(e) => format!("  job {:<16} FAILED: {e}", spec.id),
    }
}

/// `simprof serve --jobs jobs.json --store DIR [--codec lz] [--threads N]
/// [--events FILE] [--progress] [--fleet-report FILE] [--fleet-timeline FILE]`
/// — run a batch of profiling jobs concurrently, one shard per job.
///
/// Each job gets its own observability context, allocation-budget slot,
/// and `.sptrc` shard under `DIR/shards/`; finished shards are admitted
/// against their tenant's byte cap and recorded in `DIR/index.json`
/// (sorted by job id, so the index bytes are independent of completion
/// order). A job's shard is bit-identical to what `simprof profile` writes
/// for the same workload/scale/seed/codec, no matter how many neighbors
/// ran beside it. Exits nonzero when any job fails or exceeds its
/// `mem_cap_mb` budget.
///
/// Each job's outcome line is streamed (and flushed) the moment it
/// completes, so a watching terminal or pipe sees progress live; the
/// final summary then repeats every verdict in input order, which is the
/// deterministic record. `--events` appends the fleet's
/// `job_queued`/`job_started`/`job_finished`/`job_failed` lifecycle
/// events to a JSONL log, `--progress` paints a periodic one-line fleet
/// status on stderr, and `--fleet-report`/`--fleet-timeline` write the
/// per-tenant [`simprof_obs::FleetReport`] and the per-worker Chrome
/// timeline after the run (DESIGN.md §18).
pub fn serve(opts: &Options) -> Result<(), String> {
    use std::io::Write as _;

    let jobs_path = opts
        .jobs
        .as_deref()
        .ok_or_else(|| "`serve` requires --jobs <FILE> (a JSON array of job specs)".to_string())?;
    let store_root = opts
        .store
        .as_deref()
        .ok_or_else(|| "`serve` requires --store <DIR> (the trace store root)".to_string())?;
    let specs = simprof_service::load_jobs(jobs_path)?;
    let store = simprof_service::TraceStore::create(store_root)?;
    let concurrency = opts.threads.unwrap_or(4).min(specs.len()).max(1);
    let mut runner = simprof_service::JobRunner::new(store)
        .with_default_codec(opts.codec)
        .with_max_concurrent(concurrency);

    // Lifecycle sinks: a durable JSONL log (--events), a live progress
    // view (--progress), or both teed together.
    let progress = opts.progress.then(simprof_service::FleetProgress::new);
    let mut sinks: Vec<Box<dyn simprof_obs::EventSink>> = Vec::new();
    if let Some(path) = &opts.events {
        sinks.push(Box::new(simprof_obs::JsonlEventWriter::create(std::path::Path::new(path))?));
    }
    if let Some(p) = &progress {
        sinks.push(p.sink());
    }
    match sinks.len() {
        0 => {}
        1 => runner = runner.with_event_sink(sinks.pop().unwrap()),
        _ => runner = runner.with_event_sink(Box::new(simprof_obs::TeeSink(sinks))),
    }

    println!("serving {} jobs ({concurrency} concurrent) into {store_root}", specs.len());
    let ticker = progress.as_ref().map(|p| {
        let view = p.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(std::sync::atomic::Ordering::Relaxed) {
                eprintln!("{}", view.line());
                std::thread::sleep(std::time::Duration::from_millis(500));
            }
        });
        (stop, handle)
    });

    let results = runner.run_with(&specs, |i, result| {
        let line = serve_outcome_line(&specs[i], result);
        let mut out = std::io::stdout().lock();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    });

    if let Some((stop, handle)) = ticker {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = handle.join();
    }
    if let Some(p) = &progress {
        eprintln!("{}", p.line());
    }

    let mut failed = 0usize;
    let mut over_cap = 0usize;
    println!("summary ({} jobs, input order):", specs.len());
    for (spec, result) in specs.iter().zip(&results) {
        match result {
            Ok(o) => {
                if !o.within_cap {
                    over_cap += 1;
                }
            }
            Err(_) => failed += 1,
        }
        println!("{}", serve_outcome_line(spec, result));
    }
    let index_path = runner.store().write_index()?;
    println!("wrote {index_path} ({} shards)", results.iter().filter(|r| r.is_ok()).count());

    if let Some(path) = &opts.fleet_report {
        let report = simprof_service::fleet_report(runner.store(), &specs, &results)?;
        std::fs::write(path, report.to_json_pretty())
            .map_err(|e| format!("write fleet report {path}: {e}"))?;
        println!("wrote fleet report {path}");
    }
    if let Some(path) = &opts.fleet_timeline {
        let slices = simprof_service::fleet_slices(&results);
        simprof_obs::write_fleet_timeline(&slices, std::path::Path::new(path))?;
        println!("wrote fleet timeline {path} ({} job slices)", slices.len());
    }

    if failed > 0 || over_cap > 0 {
        return Err(format!(
            "{failed} of {} jobs failed, {over_cap} exceeded their memory budget",
            specs.len()
        ));
    }
    Ok(())
}

/// `simprof sensitivity -w cc_sp [--threshold 0.10]` — Algorithm 1 over the
/// Table II inputs (graph benchmarks only).
pub fn sensitivity(opts: &Options) -> Result<(), String> {
    let label = opts.require_workload("sensitivity")?;
    let id = find_workload(label)?;
    if !id.benchmark.is_graph() {
        return Err(format!(
            "`sensitivity` needs a graph workload (cc_hp, cc_sp, rank_hp, rank_sp), got {label}"
        ));
    }
    let mut cfg = workload_config(opts);
    // Same scale bump as the Fig. 12/13 harness (see DESIGN.md).
    cfg.graph_scale += 1;
    cfg.graph_degree += 2;

    let train = id.run_full(&cfg);
    let analysis = pipeline(opts).analyze(&train.trace).map_err(|e| format!("analyze: {e}"))?;
    println!("training input Google: {} units, {} phases", train.trace.units.len(), analysis.k());

    let mut references = Vec::new();
    let mut names = Vec::new();
    for &input in GraphInput::ALL.iter().filter(|&&i| i != GraphInput::Google) {
        let g = Kronecker::for_input(input, cfg.graph_scale, cfg.graph_degree)
            .generate(split_seed(cfg.seed, 0x6120 + input as u64));
        let out = id.benchmark.run_on_graph(id.framework, &cfg, &g);
        println!("  profiled reference {:<10} ({} units)", input.label(), out.trace.units.len());
        references.push(out.trace);
        names.push(input.label());
    }
    let refs: Vec<&_> = references.iter().collect();
    let rep = input_sensitivity(&analysis.model, &train.trace, &refs, opts.threshold);

    for h in 0..analysis.k() {
        let movers: Vec<&str> =
            rep.per_reference.iter().zip(&names).filter(|(p, _)| p[h]).map(|(_, &n)| n).collect();
        println!(
            "phase {h} (weight {:.1}%): {}",
            analysis.weights[h] * 100.0,
            if movers.is_empty() {
                "input INSENSITIVE".into()
            } else {
                format!("sensitive — moved by {movers:?}")
            }
        );
    }
    // §III-D-2: name the methods behind the input-sensitive phases.
    let methods = rep.sensitive_methods(&analysis.model, 1);
    if !methods.is_empty() {
        println!("input-sensitive methods:");
        for (h, m, w) in methods {
            println!("  phase {h}: {:.2}  {}", w, train.registry.name(MethodId(m as u32)));
        }
    }
    let points = analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E));
    let frac = rep.sensitive_point_fraction(&points);
    println!(
        "{}/{} phases sensitive; reference inputs need {:.0}% of the {}-point budget \
         ({:.0}% reduction)",
        rep.sensitive_count(),
        analysis.k(),
        frac * 100.0,
        points.len(),
        (1.0 - frac) * 100.0
    );
    Ok(())
}

/// `simprof diagnose (-w <label> | -i trace) [-n 20] [--reps 50] [--z 3]
/// [-o diag.json]` — estimator diagnostics: the convergence curve (overall
/// and per-phase CI half-widths across a budget sweep) and the empirical
/// CI coverage experiment (replay `--reps` seeded selections of `-n`
/// points each, count how often the stated intervals cover the full-trace
/// oracle, flag phases covering below the 90 % threshold).
pub fn diagnose(opts: &Options) -> Result<(), String> {
    let (label, analysis) = if let Some(path) = &opts.input {
        let input = TraceInput::open(path)?;
        let analysis = input.analyze(&pipeline(opts))?;
        (input.label.clone(), analysis)
    } else if let Some(label) = &opts.workload {
        let id = find_workload(label)?;
        let out = id.run_full(&workload_config(opts));
        let analysis = pipeline(opts).analyze(&out.trace).map_err(|e| format!("analyze: {e}"))?;
        (label.clone(), analysis)
    } else {
        return Err("`diagnose` requires -w/--workload or -i/--input".into());
    };

    let units = analysis.cpis.len();
    println!(
        "{label}: {} units, {} phases, oracle CPI {:.4}",
        units,
        analysis.k(),
        analysis.oracle_cpi()
    );

    let budgets = simprof_core::default_budgets(analysis.k(), opts.points, units);
    let curve =
        simprof_core::convergence_curve(&analysis, &budgets, opts.z, split_seed(opts.seed, 0xD1A6));
    println!("convergence (z = {}; independent seeded selection per budget):", opts.z);
    println!("{:>8} {:>12} {:>12}  per-phase half-widths", "budget", "se", "half-width");
    for p in &curve {
        let widths: Vec<String> =
            p.per_phase.iter().map(|w| format!("{}:{:.4}", w.phase, w.half_width)).collect();
        println!("{:>8} {:>12.6} {:>12.6}  {}", p.budget, p.se, p.half_width, widths.join(" "));
    }

    let cov = simprof_core::coverage(
        &analysis,
        opts.points,
        opts.z,
        opts.reps,
        split_seed(opts.seed, 0xC0FE),
        simprof_core::FLAG_BELOW,
    );
    println!(
        "coverage over {} replications of n = {}: overall {:.1}% (mean half-width {:.4})",
        cov.reps,
        cov.n,
        cov.overall_coverage * 100.0,
        cov.mean_half_width
    );
    println!(
        "{:>6} {:>7} {:>8} {:>10} {:>6} {:>9} {:>12} {:>6}",
        "phase", "units", "weight", "true CPI", "reps", "coverage", "half-width", "flag"
    );
    for p in &cov.per_phase {
        println!(
            "{:>6} {:>7} {:>7.1}% {:>10.4} {:>6} {:>8.1}% {:>12.4} {:>6}",
            p.phase,
            p.units,
            p.weight * 100.0,
            p.true_mean,
            p.reps,
            p.coverage * 100.0,
            p.mean_half_width,
            if p.flagged { "LOW" } else { "ok" }
        );
    }
    let flagged = cov.flagged_phases();
    if flagged.is_empty() {
        println!("all phases at or above {:.0}% empirical coverage", cov.flag_below * 100.0);
    } else {
        println!("flagged phases (coverage below {:.0}%): {flagged:?}", cov.flag_below * 100.0);
    }

    if let Some(path) = &opts.output {
        let json = serde_json::json!({
            "label": label,
            "units": units,
            "convergence": serde_json::to_value(&curve),
            "coverage": serde_json::to_value(&cov),
        });
        let text =
            serde_json::to_string_pretty(&json).map_err(|e| format!("encode diagnostics: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `simprof timeline -i run_report.json -o timeline.json` — convert a
/// previously written run report into Chrome-trace/Perfetto timeline JSON
/// (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn timeline(opts: &Options) -> Result<(), String> {
    let input = opts.require_input("timeline")?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("read {input}: {e}"))?;
    let report: simprof_obs::RunReport = serde_json::from_str(text.trim())
        .map_err(|e| format!("parse {input} as a run report: {e}"))?;
    let out = opts
        .output
        .as_deref()
        .ok_or_else(|| "`timeline` requires -o/--output <timeline.json>".to_string())?;
    simprof_obs::write_chrome_trace(&report, std::path::Path::new(out))?;
    println!("wrote {out} ({} root spans, chrome://tracing / Perfetto JSON)", report.spans.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &str) -> Options {
        let argv: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        Options::parse(&argv).unwrap()
    }

    #[test]
    fn find_workload_resolves_labels() {
        assert!(find_workload("wc_sp").is_ok());
        assert!(find_workload("rank_hp").is_ok());
        let err = find_workload("nope").unwrap_err();
        assert!(err.contains("available"), "{err}");
    }

    #[test]
    fn profile_analyze_select_roundtrip() {
        let dir = std::env::temp_dir().join("simprof_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grep.json");
        let path = path.to_str().unwrap();

        profile(&opts(&format!("-w grep_sp --scale tiny --seed 5 -o {path}"))).unwrap();
        analyze(&opts(&format!("-i {path}"))).unwrap();
        select(&opts(&format!("-i {path} -n 5"))).unwrap();
        size(&opts(&format!("-i {path} --error 0.10"))).unwrap();
        report(&opts(&format!("-i {path}"))).unwrap();
        hybrid(&opts(&format!("-i {path} -n 5"))).unwrap();
        compare(&opts(&format!("-i {path} -n 5"))).unwrap();
        let manifest_path = dir.join("manifest.json");
        let manifest_path = manifest_path.to_str().unwrap();
        export(&opts(&format!("-i {path} -n 5 -o {manifest_path}"))).unwrap();
        validate(&opts(&format!("-i {path} -n 2"))).unwrap();
        trace_info(&opts(&format!("-i {path}"))).unwrap();
        assert!(std::fs::read_to_string(manifest_path).unwrap().contains("warmup_instrs"));
        let _ = std::fs::remove_file(manifest_path);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn chunked_profile_feeds_every_trace_command() {
        let dir = std::env::temp_dir().join("simprof_cli_chunked_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grep.sptrc");
        let path = path.to_str().unwrap();

        // A non-.json output streams the chunked format while profiling.
        profile(&opts(&format!("-w grep_sp --scale tiny --seed 5 -o {path}"))).unwrap();
        assert!(simprof_trace::is_chunked(path), "profile wrote the chunked format");
        trace_info(&opts(&format!("-i {path}"))).unwrap();
        analyze(&opts(&format!("-i {path}"))).unwrap();
        select(&opts(&format!("-i {path} -n 5"))).unwrap();
        size(&opts(&format!("-i {path} --error 0.10"))).unwrap();
        report(&opts(&format!("-i {path}"))).unwrap();
        hybrid(&opts(&format!("-i {path} -n 5"))).unwrap();
        validate(&opts(&format!("-i {path} -n 2"))).unwrap();
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn run_emits_versioned_report_with_required_sections() {
        let dir = std::env::temp_dir().join("simprof_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("run_report.json");
        let report_path = report_path.to_str().unwrap();

        run_workload(&opts(&format!(
            "-w grep_sp --scale tiny --seed 5 -n 5 --report {report_path}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(report_path).unwrap();
        let report: simprof_obs::RunReport = serde_json::from_str(text.trim_end()).unwrap();
        assert_eq!(report.version, simprof_obs::REPORT_VERSION);
        // The span tree covers the three pipeline stages, with the engine
        // and phase-formation internals nested beneath them.
        for stage in ["cli.profile", "cli.phase_formation", "cli.sampling"] {
            assert!(report.find_span(stage).is_some(), "missing span {stage}");
        }
        assert!(report.find_span("cli.profile").unwrap().find("engine.run").is_some());
        assert!(report
            .find_span("cli.phase_formation")
            .unwrap()
            .find("core.form_phases")
            .is_some());
        assert!(report.find_span("cli.sampling").unwrap().find("core.select_points").is_some());
        // Metrics and the caller-attached sections made it through.
        assert!(report.metrics.counters.contains_key("profiler.units"));
        for section in ["config", "phases", "allocation", "estimate"] {
            assert!(report.sections.contains_key(section), "missing section {section}");
        }
        let _ = std::fs::remove_file(report_path);

        // Without --report, the same invocation runs sessionless.
        run_workload(&opts("-w grep_sp --scale tiny --seed 5 -n 5")).unwrap();
    }

    #[test]
    fn profile_streams_events_and_timeline_with_worker_slices() {
        let dir = std::env::temp_dir().join("simprof_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("events.jsonl");
        let timeline_path = dir.join("timeline.json");
        let report_path = dir.join("obs_report.json");
        // Force a real pool: on a single-core host the parallel regions
        // would otherwise run inline and never spawn worker threads.
        rayon::set_threads(2);
        let result = profile(&opts(&format!(
            "-w grep_sp --scale tiny --seed 5 --events {} --timeline {} --report {}",
            events.display(),
            timeline_path.display(),
            report_path.display()
        )));
        rayon::set_threads(0);
        result.unwrap();

        // Event log: meta header first, then span and unit-closed records.
        let log = std::fs::read_to_string(&events).unwrap();
        let first: serde_json::Value = serde_json::from_str(log.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("kind").and_then(|v| v.as_str()), Some("meta"));
        assert_eq!(first.get("seq").and_then(|v| v.as_u64()), Some(0));
        assert!(log.contains("span_open"), "event log records span opens");
        assert!(log.contains("unit_closed"), "event log records closed units");

        // Timeline: Chrome-trace JSON with slices on at least one worker tid.
        let tl = std::fs::read_to_string(&timeline_path).unwrap();
        assert!(tl.contains("traceEvents"));
        assert!(tl.contains("\"B\""), "timeline has begin slices");
        assert!(tl.contains("worker-"), "timeline names a worker thread");

        // The run report carries the worker span off the driver thread.
        let report: simprof_obs::RunReport =
            serde_json::from_str(std::fs::read_to_string(&report_path).unwrap().trim()).unwrap();
        let worker = report.find_span("parallel.worker").expect("worker span recorded");
        assert_ne!(worker.thread, 0, "worker span attributed to a pool thread");

        for p in [&events, &timeline_path, &report_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn run_accepts_events_and_timeline_without_report() {
        let dir = std::env::temp_dir().join("simprof_cli_run_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("run_events.jsonl");
        let timeline_path = dir.join("run_timeline.json");
        run_workload(&opts(&format!(
            "-w grep_sp --scale tiny --seed 5 -n 5 --events {} --timeline {}",
            events.display(),
            timeline_path.display()
        )))
        .unwrap();
        assert!(std::fs::read_to_string(&events).unwrap().contains("span_close"));
        assert!(std::fs::read_to_string(&timeline_path).unwrap().contains("traceEvents"));
        let _ = std::fs::remove_file(&events);
        let _ = std::fs::remove_file(&timeline_path);
    }

    #[test]
    fn diagnose_reports_coverage_and_writes_json() {
        let dir = std::env::temp_dir().join("simprof_cli_diag_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("diag.json");
        diagnose(&opts(&format!(
            "-w grep_sp --scale tiny --seed 5 -n 5 --reps 8 -o {}",
            out.display()
        )))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let json: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert!(json.get("convergence").is_some());
        let cov = json.get("coverage").expect("coverage section");
        assert_eq!(cov.get("reps").and_then(|v| v.as_u64()), Some(8));
        assert!(cov.get("overall_coverage").is_some());
        let _ = std::fs::remove_file(&out);

        // Without -w or -i, diagnose refuses.
        assert!(diagnose(&opts("--reps 3")).is_err());
    }

    #[test]
    fn timeline_command_converts_a_run_report() {
        let dir = std::env::temp_dir().join("simprof_cli_timeline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("tl_report.json");
        let out = dir.join("tl_out.json");
        run_workload(&opts(&format!(
            "-w grep_sp --scale tiny --seed 5 -n 5 --report {}",
            report_path.display()
        )))
        .unwrap();
        timeline(&opts(&format!("-i {} -o {}", report_path.display(), out.display()))).unwrap();
        let tl = std::fs::read_to_string(&out).unwrap();
        assert!(tl.contains("traceEvents"));
        assert!(tl.contains("thread_name"));
        // Missing -o is an explicit error, not a silent no-op.
        assert!(timeline(&opts(&format!("-i {}", report_path.display()))).is_err());
        let _ = std::fs::remove_file(&report_path);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn trace_repair_revives_a_truncated_trace() {
        let dir = std::env::temp_dir().join("simprof_cli_repair_test");
        std::fs::create_dir_all(&dir).unwrap();
        let whole = dir.join("whole.sptrc");
        let whole = whole.to_str().unwrap();
        let cut = dir.join("cut.sptrc");
        let cut_s = cut.to_str().unwrap();
        let fixed = dir.join("fixed.sptrc");
        let fixed_s = fixed.to_str().unwrap();

        profile(&opts(&format!("-w grep_sp --scale tiny --seed 5 -o {whole}"))).unwrap();
        // Re-chunk the trace into small unit frames: the tiny profile fits
        // inside one default-sized chunk, and a single torn frame would
        // leave salvage nothing intact to recover.
        let (trace, footer) = simprof_trace::read_trace(whole).unwrap();
        let meta = TraceMeta {
            label: "grep_sp".into(),
            seed: 5,
            scale: "tiny".into(),
            unit_instrs: trace.unit_instrs,
            snapshot_instrs: trace.snapshot_instrs,
            core: trace.core,
        };
        let mut rechunk = TraceWriter::create(whole, &meta).unwrap().with_chunk_units(8);
        for u in &trace.units {
            rechunk.push(u);
        }
        rechunk.finish(&footer.registry).unwrap();
        // Chop the tail off — trailer and footer gone, as after a crash.
        let bytes = std::fs::read(whole).unwrap();
        std::fs::write(&cut, &bytes[..bytes.len() - bytes.len() / 3]).unwrap();

        // The strict reader refuses the torn file and names the way out.
        let err = trace_info(&opts(&format!("-i {cut_s}"))).unwrap_err();
        assert!(err.contains("trace-repair") || err.contains("--salvage"), "{err}");
        // Salvage-mode info reads it without error.
        trace_info(&opts(&format!("--salvage -i {cut_s}"))).unwrap();
        // trace-repair needs an output path.
        assert!(trace_repair(&opts(&format!("-i {cut_s}"))).is_err());

        trace_repair(&opts(&format!("-i {cut_s} -o {fixed_s}"))).unwrap();
        // The repaired file is a first-class sealed trace again: every
        // downstream command takes it without salvage.
        trace_info(&opts(&format!("-i {fixed_s}"))).unwrap();
        analyze(&opts(&format!("-i {fixed_s}"))).unwrap();

        // The recovered prefix matches the original unit-for-unit.
        let original = simprof_trace::read_trace(whole).unwrap();
        let repaired = simprof_trace::read_trace(fixed_s).unwrap();
        assert!(!repaired.0.units.is_empty(), "truncation left recoverable chunks");
        assert!(repaired.0.units.len() < original.0.units.len());
        assert_eq!(repaired.0.units[..], original.0.units[..repaired.0.units.len()]);

        for p in [whole, cut_s, fixed_s] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn sensitivity_rejects_text_workloads() {
        let err = sensitivity(&opts("-w wc_sp --scale tiny")).unwrap_err();
        assert!(err.contains("graph workload"), "{err}");
    }

    #[test]
    fn profile_requires_known_workload() {
        assert!(profile(&opts("-w bogus --scale tiny")).is_err());
    }
}
