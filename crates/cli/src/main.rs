//! The `simprof` binary. See [`simprof_cli`] for the command surface.

use std::process::ExitCode;

/// Byte-counting allocator so `serve` jobs' `mem_cap_mb` verdicts (and
/// `--report` allocation tables) reflect real allocations; overhead when
/// no job charges a slot is one thread-local read per alloc.
#[global_allocator]
static ALLOC: simprof_obs::TrackingAllocator = simprof_obs::TrackingAllocator;

fn main() -> ExitCode {
    // Dying with a panic backtrace when stdout closes early
    // (`simprof list | head`) is hostile for a CLI; exit quietly instead.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied());
        if msg.is_some_and(|m| m.contains("Broken pipe")) {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let argv: Vec<String> = std::env::args().skip(1).collect();
    simprof_cli::run(&argv)
}
