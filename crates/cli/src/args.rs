//! Minimal flag parser for the CLI.
//!
//! The workspace's sanctioned dependency set has no argument-parsing crate,
//! and the surface is small enough that a hand-rolled parser with strict
//! validation is clearer than pulling one in.

use simprof_trace::Codec;

/// Parsed command options (flat across subcommands; each command validates
/// the subset it needs).
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// `-w/--workload`.
    pub workload: Option<String>,
    /// `-i/--input`.
    pub input: Option<String>,
    /// `-o/--output`.
    pub output: Option<String>,
    /// `-n/--points`.
    pub points: usize,
    /// `--seed`.
    pub seed: u64,
    /// `--scale`.
    pub scale: Scale,
    /// `--error`.
    pub error: f64,
    /// `--z`.
    pub z: f64,
    /// `--threshold`.
    pub threshold: f64,
    /// `--threads` (worker count for parallel regions; overrides the
    /// `SIMPROF_THREADS` environment variable).
    pub threads: Option<usize>,
    /// `--report` (path the observability run report is written to; absent
    /// means observability stays disabled and costs nothing).
    pub report: Option<String>,
    /// `--events` (path the streaming JSONL event log is written to).
    pub events: Option<String>,
    /// `--timeline` (path the Chrome-trace/Perfetto timeline JSON is
    /// written to).
    pub timeline: Option<String>,
    /// `--reps` (seeded replications for `diagnose`).
    pub reps: usize,
    /// `--salvage` (for `trace-info`: forward-scan a damaged chunked trace
    /// instead of requiring an intact footer trailer).
    pub salvage: bool,
    /// `--live` (for `run`: form phases online while profiling, with
    /// drift-triggered re-formation).
    pub live: bool,
    /// `--target-rel-err` (for `run --live`: stop profiling once the live
    /// CI half-width falls at or below this fraction of the running mean
    /// CPI; implies `--live`).
    pub target_rel_err: Option<f64>,
    /// `--codec` (per-frame trace compression for `profile`,
    /// `trace-repair`, and `serve`; absent keeps the uncompressed v2
    /// layout).
    pub codec: Option<Codec>,
    /// `--jobs` (for `serve`: path to the JSON jobs file).
    pub jobs: Option<String>,
    /// `--store` (for `serve`: root directory of the sharded trace
    /// store).
    pub store: Option<String>,
    /// `--fleet-report` (for `serve`: path the per-tenant FleetReport
    /// JSON is written to).
    pub fleet_report: Option<String>,
    /// `--fleet-timeline` (for `serve`: path the per-worker fleet
    /// Chrome-trace timeline is written to).
    pub fleet_timeline: Option<String>,
    /// `--progress` (for `serve`: render a periodic one-line fleet
    /// status while jobs run).
    pub progress: bool,
}

/// Workload scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Figure-generation scale.
    Paper,
    /// Fast test scale.
    Tiny,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            workload: None,
            input: None,
            output: None,
            points: 20,
            seed: 42,
            scale: Scale::Paper,
            error: 0.05,
            z: 3.0,
            threshold: 0.10,
            threads: None,
            report: None,
            events: None,
            timeline: None,
            reps: 50,
            salvage: false,
            live: false,
            target_rel_err: None,
            codec: None,
            jobs: None,
            store: None,
            fleet_report: None,
            fleet_timeline: None,
            progress: false,
        }
    }
}

impl Options {
    /// Parses `argv` (without the command word).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
            match flag.as_str() {
                "-w" | "--workload" => opts.workload = Some(value(flag)?),
                "-i" | "--input" => opts.input = Some(value(flag)?),
                "-o" | "--output" => opts.output = Some(value(flag)?),
                "-n" | "--points" => {
                    opts.points =
                        value(flag)?.parse().map_err(|e| format!("invalid --points: {e}"))?;
                    if opts.points == 0 {
                        return Err("--points must be at least 1".into());
                    }
                }
                "--seed" => {
                    opts.seed = value(flag)?.parse().map_err(|e| format!("invalid --seed: {e}"))?;
                }
                "--scale" => {
                    opts.scale = match value(flag)?.as_str() {
                        "paper" => Scale::Paper,
                        "tiny" => Scale::Tiny,
                        other => return Err(format!("invalid --scale `{other}` (paper|tiny)")),
                    };
                }
                "--error" => {
                    opts.error =
                        value(flag)?.parse().map_err(|e| format!("invalid --error: {e}"))?;
                    if !(opts.error > 0.0 && opts.error < 1.0) {
                        return Err("--error must be in (0, 1)".into());
                    }
                }
                "--z" => {
                    opts.z = value(flag)?.parse().map_err(|e| format!("invalid --z: {e}"))?;
                    if opts.z <= 0.0 {
                        return Err("--z must be positive".into());
                    }
                }
                "--threshold" => {
                    opts.threshold =
                        value(flag)?.parse().map_err(|e| format!("invalid --threshold: {e}"))?;
                }
                "--threads" => {
                    let t: usize =
                        value(flag)?.parse().map_err(|e| format!("invalid --threads: {e}"))?;
                    if t == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    opts.threads = Some(t);
                }
                "--report" => opts.report = Some(value(flag)?),
                "--events" => opts.events = Some(value(flag)?),
                "--timeline" => opts.timeline = Some(value(flag)?),
                "--reps" => {
                    opts.reps = value(flag)?.parse().map_err(|e| format!("invalid --reps: {e}"))?;
                    if opts.reps == 0 {
                        return Err("--reps must be at least 1".into());
                    }
                }
                "--salvage" => opts.salvage = true,
                "--live" => opts.live = true,
                "--target-rel-err" => {
                    let e: f64 = value(flag)?
                        .parse()
                        .map_err(|e| format!("invalid --target-rel-err: {e}"))?;
                    if !(e > 0.0 && e < 1.0) {
                        return Err("--target-rel-err must be in (0, 1)".into());
                    }
                    opts.target_rel_err = Some(e);
                    opts.live = true;
                }
                "--codec" => opts.codec = Some(Codec::parse(&value(flag)?)?),
                "--jobs" => opts.jobs = Some(value(flag)?),
                "--store" => opts.store = Some(value(flag)?),
                "--fleet-report" => opts.fleet_report = Some(value(flag)?),
                "--fleet-timeline" => opts.fleet_timeline = Some(value(flag)?),
                "--progress" => opts.progress = true,
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The workload flag, or an error naming the command that needs it.
    pub fn require_workload(&self, command: &str) -> Result<&str, String> {
        self.workload
            .as_deref()
            .ok_or_else(|| format!("`{command}` requires -w/--workload (see `simprof list`)"))
    }

    /// The input flag, or an error naming the command that needs it.
    pub fn require_input(&self, command: &str) -> Result<&str, String> {
        self.input.as_deref().ok_or_else(|| format!("`{command}` requires -i/--input <trace.json>"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Options, String> {
        let argv: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        Options::parse(&argv)
    }

    #[test]
    fn defaults() {
        let o = parse("").unwrap();
        assert_eq!(o, Options::default());
        assert_eq!(o.points, 20);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn long_and_short_flags() {
        let o = parse("-w wc_sp -i in.json -o out.json -n 7 --seed 9").unwrap();
        assert_eq!(o.workload.as_deref(), Some("wc_sp"));
        assert_eq!(o.input.as_deref(), Some("in.json"));
        assert_eq!(o.output.as_deref(), Some("out.json"));
        assert_eq!(o.points, 7);
        assert_eq!(o.seed, 9);
        let o2 = parse("--workload wc_sp --points 7").unwrap();
        assert_eq!(o2.workload.as_deref(), Some("wc_sp"));
        assert_eq!(o2.points, 7);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse("--scale tiny").unwrap().scale, Scale::Tiny);
        assert_eq!(parse("--scale paper").unwrap().scale, Scale::Paper);
        assert!(parse("--scale huge").is_err());
    }

    #[test]
    fn validation_errors() {
        assert!(parse("--points").is_err(), "missing value");
        assert!(parse("--points x").is_err());
        assert!(parse("--points 0").is_err(), "zero points rejected");
        assert!(parse("--error 1.5").is_err());
        assert!(parse("--error 0").is_err());
        assert!(parse("--z -1").is_err());
        assert!(parse("--wat 1").is_err());
        assert!(parse("--threads 0").is_err(), "zero threads rejected");
        assert!(parse("--threads x").is_err());
    }

    #[test]
    fn threads_flag() {
        assert_eq!(parse("").unwrap().threads, None);
        assert_eq!(parse("--threads 4").unwrap().threads, Some(4));
    }

    #[test]
    fn report_flag() {
        assert_eq!(parse("").unwrap().report, None);
        assert_eq!(parse("--report run.json").unwrap().report.as_deref(), Some("run.json"));
        assert!(parse("--report").is_err(), "missing value");
    }

    #[test]
    fn events_and_timeline_flags() {
        let o = parse("").unwrap();
        assert_eq!(o.events, None);
        assert_eq!(o.timeline, None);
        let o = parse("--events e.jsonl --timeline t.json").unwrap();
        assert_eq!(o.events.as_deref(), Some("e.jsonl"));
        assert_eq!(o.timeline.as_deref(), Some("t.json"));
        assert!(parse("--events").is_err(), "missing value");
        assert!(parse("--timeline").is_err(), "missing value");
    }

    #[test]
    fn reps_flag() {
        assert_eq!(parse("").unwrap().reps, 50);
        assert_eq!(parse("--reps 80").unwrap().reps, 80);
        assert!(parse("--reps 0").is_err(), "zero reps rejected");
        assert!(parse("--reps x").is_err());
    }

    #[test]
    fn salvage_flag() {
        assert!(!parse("").unwrap().salvage, "salvage defaults off");
        assert!(parse("--salvage").unwrap().salvage);
        // Takes no value: the next token is parsed as its own flag.
        let o = parse("--salvage -i t.sptrc").unwrap();
        assert!(o.salvage);
        assert_eq!(o.input.as_deref(), Some("t.sptrc"));
    }

    #[test]
    fn live_flags() {
        let o = parse("").unwrap();
        assert!(!o.live, "live defaults off");
        assert_eq!(o.target_rel_err, None);
        assert!(parse("--live").unwrap().live);
        let o = parse("--target-rel-err 0.05").unwrap();
        assert_eq!(o.target_rel_err, Some(0.05));
        assert!(o.live, "a stopping target implies live mode");
        assert!(parse("--target-rel-err 0").is_err());
        assert!(parse("--target-rel-err 1.0").is_err());
        assert!(parse("--target-rel-err x").is_err());
        assert!(parse("--target-rel-err").is_err(), "missing value");
    }

    #[test]
    fn codec_flag() {
        assert_eq!(parse("").unwrap().codec, None);
        assert_eq!(parse("--codec raw").unwrap().codec, Some(Codec::Raw));
        assert_eq!(parse("--codec lz").unwrap().codec, Some(Codec::Lz));
        assert!(parse("--codec zstd").is_err(), "unknown codec rejected");
        assert!(parse("--codec").is_err(), "missing value");
    }

    #[test]
    fn serve_flags() {
        let o = parse("").unwrap();
        assert_eq!(o.jobs, None);
        assert_eq!(o.store, None);
        let o = parse("--jobs jobs.json --store traces/").unwrap();
        assert_eq!(o.jobs.as_deref(), Some("jobs.json"));
        assert_eq!(o.store.as_deref(), Some("traces/"));
        assert!(parse("--jobs").is_err(), "missing value");
        assert!(parse("--store").is_err(), "missing value");
    }

    #[test]
    fn fleet_flags() {
        let o = parse("").unwrap();
        assert_eq!(o.fleet_report, None);
        assert_eq!(o.fleet_timeline, None);
        assert!(!o.progress, "progress defaults off");
        let o =
            parse("--fleet-report fleet.json --fleet-timeline fleet_tl.json --progress").unwrap();
        assert_eq!(o.fleet_report.as_deref(), Some("fleet.json"));
        assert_eq!(o.fleet_timeline.as_deref(), Some("fleet_tl.json"));
        assert!(o.progress);
        assert!(parse("--fleet-report").is_err(), "missing value");
        assert!(parse("--fleet-timeline").is_err(), "missing value");
        // --progress takes no value: the next token parses as its own flag.
        let o = parse("--progress --jobs j.json").unwrap();
        assert!(o.progress);
        assert_eq!(o.jobs.as_deref(), Some("j.json"));
    }

    #[test]
    fn require_helpers() {
        let o = parse("").unwrap();
        assert!(o.require_workload("profile").is_err());
        assert!(o.require_input("analyze").is_err());
        let o = parse("-w wc_sp -i t.json").unwrap();
        assert_eq!(o.require_workload("profile").unwrap(), "wc_sp");
        assert_eq!(o.require_input("analyze").unwrap(), "t.json");
    }
}
