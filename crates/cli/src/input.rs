//! Format-agnostic trace input: every trace-consuming command opens its
//! input through [`TraceInput`], which sniffs the file's leading bytes and
//! dispatches to the legacy JSON [`TraceBundle`] or the chunked
//! `simprof-trace` format.
//!
//! The two formats are interchangeable by contract: analysis routed through
//! [`TraceInput::analyze`] is **bit-identical** whichever format the trace
//! came from (and identical to analyzing the in-memory [`ProfileTrace`]
//! directly), because all three paths run the same two-pass streaming
//! pipeline — a legacy bundle just streams from memory while a chunked file
//! streams from disk, one chunk at a time.

use simprof_core::{Analysis, SimProf};
use simprof_engine::MethodRegistry;
use simprof_profiler::ProfileTrace;
use simprof_trace::{read_trace, TraceFooter, TraceReader};

use crate::bundle::{TraceBundle, FORMAT_VERSION};

/// An opened trace file, either format.
#[derive(Debug)]
pub struct TraceInput {
    /// Workload label (`wc_sp`, …).
    pub label: String,
    /// Seed the profiled run used.
    pub seed: u64,
    /// Scale preset name ("paper" / "tiny").
    pub scale: String,
    /// Method names/classes for the trace's method ids.
    pub registry: MethodRegistry,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    /// Legacy JSON bundle, already materialized.
    Legacy(ProfileTrace),
    /// Chunked file; units stay on disk until someone streams them.
    Chunked { path: String, footer: TraceFooter, unit_instrs: u64 },
}

impl TraceInput {
    /// Opens `path`, auto-detecting the format from its leading bytes.
    pub fn open(path: &str) -> Result<Self, String> {
        if simprof_trace::is_chunked(path) {
            let mut reader = TraceReader::open(path)?;
            let footer = reader.footer()?;
            let meta = reader.meta().clone();
            Ok(Self {
                label: meta.label,
                seed: meta.seed,
                scale: meta.scale,
                registry: footer.registry.clone(),
                kind: Kind::Chunked {
                    path: path.to_owned(),
                    unit_instrs: meta.unit_instrs,
                    footer,
                },
            })
        } else {
            let bundle = TraceBundle::load(path)?;
            Ok(Self {
                label: bundle.label,
                seed: bundle.seed,
                scale: bundle.scale,
                registry: bundle.registry,
                kind: Kind::Legacy(bundle.trace),
            })
        }
    }

    /// True when the input is the chunked streaming format.
    pub fn is_chunked(&self) -> bool {
        matches!(self.kind, Kind::Chunked { .. })
    }

    /// Number of sampling units (from the footer for chunked files — no
    /// unit scan needed).
    pub fn unit_count(&self) -> u64 {
        match &self.kind {
            Kind::Legacy(trace) => trace.units.len() as u64,
            Kind::Chunked { footer, .. } => footer.unit_count,
        }
    }

    /// Sampling-unit size in instructions.
    pub fn unit_instrs(&self) -> u64 {
        match &self.kind {
            Kind::Legacy(trace) => trace.unit_instrs,
            Kind::Chunked { unit_instrs, .. } => *unit_instrs,
        }
    }

    /// Runs the analysis pipeline: streaming from disk for chunked files,
    /// over the in-memory trace for legacy bundles. Output is bit-identical
    /// either way.
    pub fn analyze(&self, pipeline: &SimProf) -> Result<Analysis, String> {
        match &self.kind {
            Kind::Legacy(trace) => pipeline.analyze(trace).map_err(|e| format!("analyze: {e}")),
            Kind::Chunked { path, .. } => {
                let mut reader = TraceReader::open(path)?;
                pipeline.analyze_stream(&mut reader).map_err(|e| format!("analyze: {e}"))
            }
        }
    }

    /// Materializes the input into a legacy [`TraceBundle`] — for commands
    /// that genuinely need the whole trace in memory (replay, export,
    /// baseline comparison).
    pub fn into_bundle(self) -> Result<TraceBundle, String> {
        let trace = match self.kind {
            Kind::Legacy(trace) => trace,
            Kind::Chunked { path, .. } => read_trace(&path)?.0,
        };
        Ok(TraceBundle {
            version: FORMAT_VERSION,
            label: self.label,
            seed: self.seed,
            scale: self.scale,
            trace,
            registry: self.registry,
        })
    }

    /// The chunked footer, when the input is chunked.
    pub fn footer(&self) -> Option<&TraceFooter> {
        match &self.kind {
            Kind::Legacy(_) => None,
            Kind::Chunked { footer, .. } => Some(footer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_trace::{TraceMeta, TraceWriter};
    use simprof_workloads::{Benchmark, Framework, WorkloadConfig};

    #[test]
    fn both_formats_open_and_analyze_identically() {
        let cfg = WorkloadConfig::tiny(11);
        let out = Benchmark::Grep.run_full(Framework::Spark, &cfg);
        let dir = std::env::temp_dir();
        let legacy_path = dir.join("simprof_input_legacy.json");
        let legacy_path = legacy_path.to_str().unwrap();
        let chunked_path = dir.join("simprof_input_chunked.sptrc");
        let chunked_path = chunked_path.to_str().unwrap();

        TraceBundle {
            version: FORMAT_VERSION,
            label: "grep_sp".into(),
            seed: 11,
            scale: "tiny".into(),
            trace: out.trace.clone(),
            registry: out.registry.clone(),
        }
        .save(legacy_path)
        .unwrap();

        let meta = TraceMeta {
            label: "grep_sp".into(),
            seed: 11,
            scale: "tiny".into(),
            unit_instrs: out.trace.unit_instrs,
            snapshot_instrs: out.trace.snapshot_instrs,
            core: out.trace.core,
        };
        let mut w = TraceWriter::create(chunked_path, &meta).unwrap().with_chunk_units(16);
        for u in &out.trace.units {
            w.push(u);
        }
        w.finish(&out.registry).unwrap();

        let legacy = TraceInput::open(legacy_path).unwrap();
        let chunked = TraceInput::open(chunked_path).unwrap();
        assert!(!legacy.is_chunked());
        assert!(chunked.is_chunked());
        assert_eq!(legacy.label, chunked.label);
        assert_eq!(legacy.unit_count(), chunked.unit_count());
        assert_eq!(legacy.unit_instrs(), chunked.unit_instrs());

        let sp = SimProf::default();
        let a = legacy.analyze(&sp).unwrap();
        let b = chunked.analyze(&sp).unwrap();
        assert_eq!(a.cpis, b.cpis);
        assert_eq!(a.model.assignments, b.model.assignments);
        assert_eq!(a.model.space, b.model.space);
        assert_eq!(a.stats, b.stats);

        // Materializing the chunked file reproduces the trace exactly.
        let bundle = chunked.into_bundle().unwrap();
        assert_eq!(bundle.trace, out.trace);
        assert_eq!(bundle.label, "grep_sp");

        let _ = std::fs::remove_file(legacy_path);
        let _ = std::fs::remove_file(chunked_path);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(TraceInput::open("/nonexistent/simprof.whatever").is_err());
    }
}
