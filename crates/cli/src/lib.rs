//! Command-line interface for SimProf.
//!
//! The `simprof` binary drives the whole pipeline from a shell:
//!
//! ```text
//! simprof list                                   # the 12-workload matrix
//! simprof run -w wc_sp --report run.json         # whole pipeline + run report
//! simprof run -w wc_sp --live --target-rel-err 0.05  # online phases + early stop
//! simprof profile -w wc_sp -o wc.sptrc           # run + stream a trace to disk
//! simprof trace-info -i wc.sptrc                 # footer metadata, no unit scan
//! simprof trace-info --salvage -i torn.sptrc     # damage report for a torn trace
//! simprof trace-repair -i torn.sptrc -o ok.sptrc # salvage → sealed v2 file
//! simprof analyze -i wc.sptrc                    # phases + homogeneity (streamed)
//! simprof select  -i wc.sptrc -n 20              # simulation points + CI
//! simprof size    -i wc.sptrc --error 0.05       # required sample size
//! simprof report  -i wc.sptrc                    # per-phase method report
//! simprof sensitivity -w cc_sp                   # Algorithm 1 over Table II
//! simprof diagnose -w wc_sp --reps 50            # CI convergence + coverage
//! simprof timeline -i run.json -o timeline.json  # Perfetto timeline export
//! ```
//!
//! Two trace formats are supported, auto-detected on read (see
//! [`input::TraceInput`]): the chunked streaming `.sptrc` format
//! (`simprof-trace`), written while the engine runs and analyzed without
//! materializing the trace, and the legacy JSON [`bundle::TraceBundle`]
//! (written when `profile`'s output path ends in `.json`). Either way an
//! `analyze`/`select` run can happen on a different machine than the
//! `profile` run — mirroring the paper's profile-on-hardware /
//! simulate-elsewhere workflow — and the analysis output is bit-identical
//! across formats.

pub mod args;
pub mod bundle;
pub mod commands;
pub mod input;

use std::process::ExitCode;

/// Entry point shared by the binary and the integration tests.
pub fn run(argv: &[String]) -> ExitCode {
    match dispatch(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses and executes one invocation.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let (command, rest) = argv.split_first().ok_or_else(usage)?;
    let opts = args::Options::parse(rest)?;
    if let Some(threads) = opts.threads {
        // Pin the worker count before any parallel region runs: every
        // analysis result is bit-identical at any thread count, but only if
        // the override is in place from the very first region.
        rayon::set_threads(threads);
        assert_eq!(
            rayon::current_threads(),
            threads,
            "--threads override must take effect before any parallel work"
        );
    }
    match command.as_str() {
        "list" => commands::list(&opts),
        "run" => commands::run_workload(&opts),
        "profile" => commands::profile(&opts),
        "analyze" => commands::analyze(&opts),
        "select" => commands::select(&opts),
        "size" => commands::size(&opts),
        "report" => commands::report(&opts),
        "hybrid" => commands::hybrid(&opts),
        "compare" => commands::compare(&opts),
        "export" => commands::export(&opts),
        "validate" => commands::validate(&opts),
        "serve" => commands::serve(&opts),
        "trace-info" => commands::trace_info(&opts),
        "trace-repair" => commands::trace_repair(&opts),
        "sensitivity" => commands::sensitivity(&opts),
        "diagnose" => commands::diagnose(&opts),
        "timeline" => commands::timeline(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
simprof — sampling framework for data analytic workloads (IPDPS'17)

USAGE:
    simprof <COMMAND> [OPTIONS]

COMMANDS:
    list          List the available workloads (Table I matrix)
    run           Profile → phases → points end to end (--report for a run report)
    profile       Run a workload on the simulated substrate and save a trace
    analyze       Form phases on a trace and print the homogeneity analysis
    select        Select simulation points by stratified random sampling
    size          Solve the required sample size for a target error bound
    report        Per-phase report: weights, CPI stats, characteristic methods
    hybrid        SimProf × systematic sub-unit estimator (error vs budget)
    compare       All sampling approaches on one trace (a Fig. 7 row)
    export        Write a simulation manifest for a detailed simulator
    validate      Replay selected points in isolation and compare CPIs
    serve         Run a batch of profiling jobs concurrently (--jobs file),
                  one shard per job in a --store trace store
    trace-info    Print a trace file's metadata (footer read, no unit scan;
                  --salvage forward-scans a damaged file instead)
    trace-repair  Salvage a damaged/truncated trace into a sealed file
    sensitivity   Input-sensitivity study (Algorithm 1) over the Table II graphs
    diagnose      Estimator diagnostics: CI convergence curve + empirical coverage
    timeline      Convert a run report to Chrome-trace/Perfetto timeline JSON
    help          Show this message

OPTIONS:
    -w, --workload <LABEL>   Workload label (wc_sp, sort_hp, ...); see `list`
    -i, --input <FILE>       Input trace (chunked .sptrc or legacy JSON bundle,
                             auto-detected; from `profile`)
    -o, --output <FILE>      Output file (.json → legacy bundle; anything else
                             streams the chunked trace format)
    -n, --points <N>         Number of simulation points [default: 20]
        --seed <N>           Master seed [default: 42]
        --scale <PRESET>     Workload scale: paper | tiny [default: paper]
        --error <FRAC>       Target relative error for `size` [default: 0.05]
        --z <Z>              z-score for confidence intervals [default: 3]
        --threshold <FRAC>   Sensitivity threshold for Eq. 6 [default: 0.10]
        --threads <N>        Worker threads for parallel simulation and
                             analysis [default: SIMPROF_THREADS env var, else
                             all cores]. Results are bit-identical at any
                             thread count: traces, phase assignments, and
                             estimates carry the same bytes at --threads 1
                             and --threads 64
        --report <FILE>      Write the observability run report (span tree,
                             metrics, allocation table) as versioned JSON
        --events <FILE>      Stream the structured event log (JSONL, one
                             record per span/counter/fault/unit event; for
                             `serve` it records the fleet's job lifecycle)
        --timeline <FILE>    Write the Chrome-trace/Perfetto timeline JSON
                             (open at chrome://tracing or ui.perfetto.dev)
        --reps <N>           Seeded replications for `diagnose` [default: 50]
        --salvage            For `trace-info`: recover a damaged chunked trace
                             by forward-scanning checksummed frames instead of
                             requiring an intact footer trailer
        --live               For `run`: form phases online while profiling
                             (warmup seeding, drift-triggered re-formation).
                             Without a stopping target the result is
                             bit-identical to the offline pipeline
        --target-rel-err <FRAC>  For `run --live`: stop profiling once the live
                             CI half-width is within FRAC of the mean CPI
                             (implies --live)
        --codec <NAME>       Per-frame trace compression: raw | lz. For
                             `profile`/`trace-repair` writes the v3 layout;
                             for `serve` it is the default for jobs that do
                             not choose one. Omit to keep the uncompressed
                             v2 layout
        --jobs <FILE>        For `serve`: JSON array of job specs ({id,
                             workload, seed?, scale?, codec?, mem_cap_mb?,
                             tenant?})
        --store <DIR>        For `serve`: store root; shards land under
                             DIR/shards/, the index at DIR/index.json
        --progress           For `serve`: paint a periodic one-line fleet
                             status (queued/running/done/failed, per-tenant
                             counts) on stderr while jobs run
        --fleet-report <FILE> For `serve`: write the per-tenant FleetReport
                             JSON (queue-wait/run-time quantiles, pool
                             shares, compression ratios) after the run
        --fleet-timeline <FILE> For `serve`: write a Chrome-traceable fleet
                             timeline, one track per worker thread
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(dispatch(&argv("frobnicate")).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(dispatch(&argv("help")).is_ok());
    }

    #[test]
    fn empty_invocation_is_an_error() {
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn list_runs() {
        assert!(dispatch(&argv("list")).is_ok());
    }
}
