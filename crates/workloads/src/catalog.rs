//! The Table I benchmark matrix and its runner.
//!
//! `Benchmark × Framework` enumerates the paper's twelve workloads
//! (`sort_hp`, `sort_sp`, `wc_hp`, …). [`Benchmark::run`] builds the job,
//! schedules it on a fresh machine with the sampling profiler attached, and
//! returns the [`simprof_profiler::ProfileTrace`] plus the method registry.

use serde::{Deserialize, Serialize};

use simprof_engine::spark::SparkMethods;
use simprof_engine::{Job, MethodRegistry, Scheduler};
use simprof_profiler::{ProfileTrace, SamplingManager, UnitSink};
use simprof_sim::Machine;

use crate::benchmarks::{bayes, cc, grep, pagerank, sort, wordcount};
use crate::config::WorkloadConfig;
use crate::synth::kronecker::SynthGraph;

/// The six BigDataBench benchmarks the paper evaluates (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// TeraSort-style ordering (microbenchmark).
    Sort,
    /// WordCount (microbenchmark).
    WordCount,
    /// Grep (microbenchmark).
    Grep,
    /// NaiveBayes (machine learning).
    NaiveBayes,
    /// Connected Components (graph analytics).
    ConnectedComponents,
    /// PageRank (graph analytics).
    PageRank,
}

impl Benchmark {
    /// All benchmarks, in Table I order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Sort,
        Benchmark::WordCount,
        Benchmark::Grep,
        Benchmark::NaiveBayes,
        Benchmark::ConnectedComponents,
        Benchmark::PageRank,
    ];

    /// The paper's abbreviation (sort, wc, grep, bayes, cc, rank).
    pub fn abbrev(self) -> &'static str {
        match self {
            Benchmark::Sort => "sort",
            Benchmark::WordCount => "wc",
            Benchmark::Grep => "grep",
            Benchmark::NaiveBayes => "bayes",
            Benchmark::ConnectedComponents => "cc",
            Benchmark::PageRank => "rank",
        }
    }

    /// Whether the benchmark consumes a graph input (cc, rank) rather than
    /// text.
    pub fn is_graph(self) -> bool {
        matches!(self, Benchmark::ConnectedComponents | Benchmark::PageRank)
    }

    /// Builds the job for one framework.
    pub fn build(
        self,
        framework: Framework,
        cfg: &WorkloadConfig,
        machine: &mut Machine,
        registry: &mut MethodRegistry,
    ) -> Job {
        match (self, framework) {
            (Benchmark::Sort, Framework::Spark) => sort::spark(cfg, machine, registry),
            (Benchmark::Sort, Framework::Hadoop) => sort::hadoop(cfg, machine, registry),
            (Benchmark::WordCount, Framework::Spark) => wordcount::spark(cfg, machine, registry),
            (Benchmark::WordCount, Framework::Hadoop) => wordcount::hadoop(cfg, machine, registry),
            (Benchmark::Grep, Framework::Spark) => grep::spark(cfg, machine, registry),
            (Benchmark::Grep, Framework::Hadoop) => grep::hadoop(cfg, machine, registry),
            (Benchmark::NaiveBayes, Framework::Spark) => bayes::spark(cfg, machine, registry),
            (Benchmark::NaiveBayes, Framework::Hadoop) => bayes::hadoop(cfg, machine, registry),
            (Benchmark::ConnectedComponents, Framework::Spark) => cc::spark(cfg, machine, registry),
            (Benchmark::ConnectedComponents, Framework::Hadoop) => {
                cc::hadoop(cfg, machine, registry)
            }
            (Benchmark::PageRank, Framework::Spark) => pagerank::spark(cfg, machine, registry),
            (Benchmark::PageRank, Framework::Hadoop) => pagerank::hadoop(cfg, machine, registry),
        }
    }

    /// Builds, schedules, and profiles the workload, returning trace +
    /// registry (+ machine end-state statistics).
    pub fn run_full(self, framework: Framework, cfg: &WorkloadConfig) -> RunOutput {
        self.run_full_with_sinks(framework, cfg, Vec::new())
    }

    /// Like [`run_full`](Self::run_full), but attaches the given
    /// [`UnitSink`]s to the profiler before the run: each sampling unit is
    /// emitted to every sink the moment it closes, while the engine is still
    /// executing — the hook the streaming trace writer uses to put units on
    /// disk without a whole-trace buffer.
    pub fn run_full_with_sinks(
        self,
        framework: Framework,
        cfg: &WorkloadConfig,
        sinks: Vec<Box<dyn UnitSink>>,
    ) -> RunOutput {
        let mut machine = Machine::new(cfg.machine);
        let mut registry = MethodRegistry::new();
        let job = self.build(framework, cfg, &mut machine, &mut registry);
        let trace = profile_job_with_sinks(&job, cfg, &mut machine, &mut registry, sinks);
        RunOutput {
            trace,
            registry,
            total_tasks: job.total_tasks(),
            total_instrs: job.total_instrs(),
        }
    }

    /// Convenience: run and return just the trace.
    pub fn run(self, framework: Framework, cfg: &WorkloadConfig) -> ProfileTrace {
        self.run_full(framework, cfg).trace
    }

    /// Runs a *graph* benchmark (cc, rank) on the Spark engine with an
    /// explicit input graph — the §IV-E input-sensitivity entry point.
    ///
    /// # Panics
    ///
    /// Panics for text benchmarks, which have no graph input.
    pub fn run_spark_on_graph(self, cfg: &WorkloadConfig, graph: &SynthGraph) -> RunOutput {
        self.run_on_graph(Framework::Spark, cfg, graph)
    }

    /// Runs WordCount on the Spark engine with an explicit text corpus —
    /// the text-input sensitivity entry point (paper future work).
    ///
    /// # Panics
    ///
    /// Panics for benchmarks other than WordCount.
    pub fn run_spark_on_text(self, cfg: &WorkloadConfig, lines: &[String]) -> RunOutput {
        assert!(
            self == Benchmark::WordCount,
            "text-input sensitivity is implemented for WordCount"
        );
        let mut machine = Machine::new(cfg.machine);
        let mut registry = MethodRegistry::new();
        let job = wordcount::spark_with_corpus(cfg, &mut machine, &mut registry, lines);
        let trace = profile_job(&job, cfg, &mut machine, &mut registry);
        RunOutput {
            trace,
            registry,
            total_tasks: job.total_tasks(),
            total_instrs: job.total_instrs(),
        }
    }

    /// Runs a *graph* benchmark on either framework with an explicit input
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics for text benchmarks, which have no graph input.
    pub fn run_on_graph(
        self,
        framework: Framework,
        cfg: &WorkloadConfig,
        graph: &SynthGraph,
    ) -> RunOutput {
        assert!(self.is_graph(), "only graph benchmarks take a graph input");
        let mut machine = Machine::new(cfg.machine);
        let mut registry = MethodRegistry::new();
        let job = match (self, framework) {
            (Benchmark::ConnectedComponents, Framework::Spark) => {
                let sm = SparkMethods::intern(&mut registry);
                cc::spark_on_graph(cfg, &mut machine, &mut registry, &sm, graph)
            }
            (Benchmark::PageRank, Framework::Spark) => {
                let sm = SparkMethods::intern(&mut registry);
                pagerank::spark_on_graph(cfg, &mut machine, &mut registry, &sm, graph)
            }
            (Benchmark::ConnectedComponents, Framework::Hadoop) => {
                cc::hadoop_on_graph(cfg, &mut machine, &mut registry, graph)
            }
            (Benchmark::PageRank, Framework::Hadoop) => {
                pagerank::hadoop_on_graph(cfg, &mut machine, &mut registry, graph)
            }
            _ => unreachable!(),
        };
        let trace = profile_job(&job, cfg, &mut machine, &mut registry);
        RunOutput {
            trace,
            registry,
            total_tasks: job.total_tasks(),
            total_instrs: job.total_instrs(),
        }
    }
}

/// The two computing frameworks (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// The Hadoop-MapReduce-like engine (`_hp` suffix in the paper).
    Hadoop,
    /// The Spark-like engine (`_sp` suffix).
    Spark,
}

impl Framework {
    /// Both frameworks, Hadoop first (the paper's figure order).
    pub const ALL: [Framework; 2] = [Framework::Hadoop, Framework::Spark];

    /// The paper's suffix ("hp" / "sp").
    pub fn suffix(self) -> &'static str {
        match self {
            Framework::Hadoop => "hp",
            Framework::Spark => "sp",
        }
    }
}

/// One workload of the 12-cell matrix, with its paper-style label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkloadId {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The framework.
    pub framework: Framework,
}

impl WorkloadId {
    /// All twelve workloads, grouped by benchmark (Table I order), Hadoop
    /// before Spark within each.
    pub fn all() -> Vec<WorkloadId> {
        Benchmark::ALL
            .iter()
            .flat_map(|&b| {
                Framework::ALL.iter().map(move |&f| WorkloadId { benchmark: b, framework: f })
            })
            .collect()
    }

    /// The paper-style label, e.g. `wc_hp`.
    pub fn label(self) -> String {
        format!("{}_{}", self.benchmark.abbrev(), self.framework.suffix())
    }

    /// Runs this workload.
    pub fn run_full(self, cfg: &WorkloadConfig) -> RunOutput {
        self.benchmark.run_full(self.framework, cfg)
    }

    /// Runs this workload with [`UnitSink`]s attached to the profiler (see
    /// [`Benchmark::run_full_with_sinks`]).
    pub fn run_full_with_sinks(
        self,
        cfg: &WorkloadConfig,
        sinks: Vec<Box<dyn UnitSink>>,
    ) -> RunOutput {
        self.benchmark.run_full_with_sinks(self.framework, cfg, sinks)
    }
}

/// Everything a benchmark run produces.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The profiled sampling units.
    pub trace: ProfileTrace,
    /// Method registry for name/class lookups.
    pub registry: MethodRegistry,
    /// Number of tasks the job contained.
    pub total_tasks: usize,
    /// Total instructions the job described.
    pub total_instrs: u64,
}

/// A probe that measures counters over one instruction window on core 0.
struct WindowProbe {
    start: u64,
    end: u64,
    at_start: Option<simprof_sim::Counters>,
    at_end: Option<simprof_sim::Counters>,
}

impl simprof_engine::ExecListener for WindowProbe {
    fn on_progress(
        &mut self,
        core: usize,
        instrs: u64,
        _stack: &[simprof_engine::MethodId],
        m: &Machine,
    ) {
        if core != 0 {
            return;
        }
        if self.at_start.is_none() && instrs >= self.start {
            self.at_start = Some(m.counters(0));
        }
        if self.at_end.is_none() && instrs >= self.end {
            self.at_end = Some(m.counters(0));
        }
    }
}

impl WorkloadId {
    /// Replays one sampling unit the way a detailed simulator would: rebuild
    /// the (deterministic) job, fast-forward, flush all caches `warmup`
    /// instructions before the unit, and measure the unit's CPI.
    ///
    /// Returns `None` when the window was never reached (unit id past the
    /// end of the job).
    pub fn replay_unit(
        self,
        cfg: &WorkloadConfig,
        unit: u64,
        unit_instrs: u64,
        warmup: u64,
    ) -> Option<f64> {
        let mut machine = Machine::new(cfg.machine);
        let mut registry = MethodRegistry::new();
        let job = self.benchmark.build(self.framework, cfg, &mut machine, &mut registry);
        let start = unit * unit_instrs;
        let mut sched = cfg.sched;
        sched.cold_restart = Some((0, start.saturating_sub(warmup)));
        let mut probe =
            WindowProbe { start, end: start + unit_instrs, at_start: None, at_end: None };
        Scheduler::new(sched).run(&mut machine, &job, &mut probe);
        match (probe.at_start, probe.at_end) {
            (Some(a), Some(b)) => Some((b - a).cpi()),
            _ => None,
        }
    }
}

fn profile_job(
    job: &Job,
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    registry: &mut MethodRegistry,
) -> ProfileTrace {
    profile_job_with_sinks(job, cfg, machine, registry, Vec::new())
}

fn profile_job_with_sinks(
    job: &Job,
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    registry: &mut MethodRegistry,
    sinks: Vec<Box<dyn UnitSink>>,
) -> ProfileTrace {
    let mut sched = cfg.sched;
    if cfg.gc_noise_ppm > 0 {
        // JVM runtime noise: GC safepoints observed by the profiler.
        let gc = registry.intern("jvm.GCTaskThread.run", simprof_engine::OpClass::Framework);
        sched.gc = Some(simprof_engine::sched::GcModel {
            method: gc,
            probability_ppm: cfg.gc_noise_ppm,
            pause_cycles: 800,
            seed: cfg.sub_seed(0x6C),
        });
    }
    let mut manager = SamplingManager::new(cfg.profiler);
    for sink in sinks {
        manager.add_sink(sink);
    }
    Scheduler::new(sched).run(machine, job, &mut manager);
    manager.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads() {
        let all = WorkloadId::all();
        assert_eq!(all.len(), 12);
        let labels: Vec<String> = all.iter().map(|w| w.label()).collect();
        assert!(labels.contains(&"wc_hp".to_owned()));
        assert!(labels.contains(&"rank_sp".to_owned()));
        let set: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn every_workload_produces_units() {
        let cfg = WorkloadConfig::tiny(1);
        for w in WorkloadId::all() {
            let out = w.run_full(&cfg);
            assert!(
                out.trace.units.len() >= 10,
                "{} produced only {} units",
                w.label(),
                out.trace.units.len()
            );
            assert!(out.trace.oracle_cpi() > 0.4, "{} cpi {}", w.label(), out.trace.oracle_cpi());
            assert!(out.registry.len() > 10, "{}", w.label());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = WorkloadConfig::tiny(9);
        let a = Benchmark::WordCount.run(Framework::Spark, &cfg);
        let b = Benchmark::WordCount.run(Framework::Spark, &cfg);
        assert_eq!(a, b);
        let c = Benchmark::WordCount.run(Framework::Spark, &WorkloadConfig::tiny(10));
        assert_ne!(a, c);
    }

    #[test]
    fn graph_entry_point_accepts_inputs() {
        use crate::synth::kronecker::{GraphInput, Kronecker};
        let cfg = WorkloadConfig::tiny(2);
        let g = Kronecker::for_input(GraphInput::Road, cfg.graph_scale, cfg.graph_degree)
            .generate(cfg.sub_seed(8));
        let out = Benchmark::ConnectedComponents.run_spark_on_graph(&cfg, &g);
        assert!(!out.trace.units.is_empty());
    }

    #[test]
    #[should_panic(expected = "graph benchmarks")]
    fn graph_entry_point_rejects_text_benchmarks() {
        use crate::synth::kronecker::{GraphInput, Kronecker};
        let cfg = WorkloadConfig::tiny(2);
        let g = Kronecker::for_input(GraphInput::Road, 8, 4).generate(1);
        let _ = Benchmark::Grep.run_spark_on_graph(&cfg, &g);
    }
}
