//! Kronecker graph synthesis (Leskovec et al., JMLR 2010 — the paper's
//! reference [20]) and the Table II input catalogue.
//!
//! A stochastic Kronecker graph is defined by a 2×2 initiator matrix
//! `[[a, b], [c, d]]` Kronecker-powered `scale` times; each edge is placed
//! by descending `scale` levels, choosing a quadrant at each level with
//! probability proportional to the initiator entries. Different initiators
//! produce different degree skew and community structure — which is exactly
//! how the paper synthesizes analogues of the SNAP graphs (Google, Facebook,
//! …, Road) for the input-sensitivity study.

use rand::RngExt;
use serde::{Deserialize, Serialize};

use simprof_stats::{seeded, split_seed};

/// The Table II inputs. `Google` is the training input; the rest are
/// reference inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphInput {
    /// Web graph (training input).
    Google,
    /// Social network.
    Facebook,
    /// Online communities.
    Flickr,
    /// Online encyclopedia links.
    Wikipedia,
    /// Computer-science bibliography (collaboration).
    Dblp,
    /// Web graph.
    Stanford,
    /// Product co-purchasing network.
    Amazon,
    /// Road network (near-uniform degrees).
    Road,
}

impl GraphInput {
    /// All inputs, training input first (Table II order).
    pub const ALL: [GraphInput; 8] = [
        GraphInput::Google,
        GraphInput::Facebook,
        GraphInput::Flickr,
        GraphInput::Wikipedia,
        GraphInput::Dblp,
        GraphInput::Stanford,
        GraphInput::Amazon,
        GraphInput::Road,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            GraphInput::Google => "Google",
            GraphInput::Facebook => "Facebook",
            GraphInput::Flickr => "Flickr",
            GraphInput::Wikipedia => "Wikipedia",
            GraphInput::Dblp => "DBLP",
            GraphInput::Stanford => "Stanford",
            GraphInput::Amazon => "Amazon",
            GraphInput::Road => "Road",
        }
    }

    /// Kronecker initiator `[a, b, c, d]` fitted to each graph family's
    /// published connectivity character (heavy-tailed web/social graphs get
    /// skewed initiators; the road network is near-uniform).
    pub fn initiator(self) -> [f64; 4] {
        match self {
            GraphInput::Google => [0.83, 0.56, 0.46, 0.30],
            GraphInput::Facebook => [0.99, 0.53, 0.53, 0.21],
            GraphInput::Flickr => [0.99, 0.47, 0.49, 0.14],
            GraphInput::Wikipedia => [0.90, 0.60, 0.35, 0.20],
            GraphInput::Dblp => [0.98, 0.58, 0.58, 0.05],
            GraphInput::Stanford => [0.93, 0.58, 0.42, 0.20],
            GraphInput::Amazon => [0.95, 0.46, 0.46, 0.26],
            GraphInput::Road => [0.55, 0.45, 0.45, 0.55],
        }
    }

    /// Average out-degree multiplier relative to the configured base degree
    /// (social graphs are denser than road networks).
    pub fn degree_factor(self) -> f64 {
        match self {
            GraphInput::Facebook | GraphInput::Flickr => 1.6,
            GraphInput::Wikipedia => 1.3,
            GraphInput::Road => 0.4,
            _ => 1.0,
        }
    }
}

/// Kronecker graph generator.
#[derive(Debug, Clone, Copy)]
pub struct Kronecker {
    /// Initiator matrix `[a, b, c, d]`.
    pub initiator: [f64; 4],
    /// log2 of the vertex count.
    pub scale: u32,
    /// Number of edges to place.
    pub edges: usize,
}

/// A synthesized graph in CSR form (out-edges).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthGraph {
    /// Number of vertices.
    pub n: usize,
    /// CSR row offsets (`n + 1` entries).
    pub offsets: Vec<u32>,
    /// CSR column indices (edge targets).
    pub targets: Vec<u32>,
}

impl SynthGraph {
    /// Out-neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Maximum out-degree (skew diagnostic).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

impl Kronecker {
    /// Builds a generator for one Table II input at the given scale/degree.
    pub fn for_input(input: GraphInput, scale: u32, base_degree: u32) -> Self {
        let n = 1usize << scale;
        let edges = ((n as f64) * base_degree as f64 * input.degree_factor()) as usize;
        Self { initiator: input.initiator(), scale, edges }
    }

    /// Samples the graph. Duplicate edges and self-loops are kept (they are
    /// part of the stochastic Kronecker model and harmless to the
    /// workloads); edges are sorted into CSR.
    pub fn generate(&self, seed: u64) -> SynthGraph {
        let n = 1usize << self.scale;
        let [a, b, c, d] = self.initiator;
        let total = (a + b + c + d).max(f64::MIN_POSITIVE);
        let (pa, pb, pc) = (a / total, b / total, c / total);
        let mut rng = seeded(split_seed(seed, 0x6B40));

        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.edges);
        for _ in 0..self.edges {
            let mut u = 0usize;
            let mut v = 0usize;
            for _ in 0..self.scale {
                let x: f64 = rng.random();
                let (du, dv) = if x < pa {
                    (0, 0)
                } else if x < pa + pb {
                    (0, 1)
                } else if x < pa + pb + pc {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            pairs.push((u as u32, v as u32));
        }
        pairs.sort_unstable();

        let mut offsets = vec![0u32; n + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.into_iter().map(|(_, v)| v).collect();
        SynthGraph { n, offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = Kronecker::for_input(GraphInput::Google, 10, 8).generate(1);
        assert_eq!(g.n, 1024);
        assert_eq!(g.edge_count(), 1024 * 8);
        assert_eq!(*g.offsets.last().unwrap() as usize, g.targets.len());
    }

    #[test]
    fn csr_is_consistent() {
        let g = Kronecker::for_input(GraphInput::Dblp, 9, 6).generate(2);
        let total: usize = (0..g.n).map(|v| g.degree(v)).sum();
        assert_eq!(total, g.edge_count());
        for v in 0..g.n {
            for &t in g.neighbors(v) {
                assert!((t as usize) < g.n);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let k = Kronecker::for_input(GraphInput::Amazon, 9, 6);
        assert_eq!(k.generate(7).targets, k.generate(7).targets);
        assert_ne!(k.generate(7).targets, k.generate(8).targets);
    }

    #[test]
    fn skewed_initiators_give_skewed_degrees() {
        let web = Kronecker::for_input(GraphInput::Google, 12, 8).generate(3);
        let road = Kronecker::for_input(GraphInput::Road, 12, 8).generate(3);
        // Web graph: heavy-tailed degrees; road: near-uniform.
        let web_avg = web.edge_count() as f64 / web.n as f64;
        let road_avg = road.edge_count() as f64 / road.n as f64;
        assert!(
            web.max_degree() as f64 / web_avg > 4.0 * (road.max_degree() as f64 / road_avg),
            "web max/avg {} vs road {}",
            web.max_degree() as f64 / web_avg,
            road.max_degree() as f64 / road_avg
        );
    }

    #[test]
    fn degree_factors_change_density() {
        let fb = Kronecker::for_input(GraphInput::Facebook, 10, 8);
        let road = Kronecker::for_input(GraphInput::Road, 10, 8);
        assert!(fb.edges > road.edges);
    }

    #[test]
    fn all_inputs_have_distinct_initiators_or_density() {
        // No two inputs are identical in (initiator, degree factor).
        let sigs: Vec<([u8; 32], u64)> = GraphInput::ALL
            .iter()
            .map(|i| {
                let mut sig = [0u8; 32];
                for (j, v) in i.initiator().iter().enumerate() {
                    sig[j * 8..(j + 1) * 8].copy_from_slice(&v.to_le_bytes());
                }
                (sig, (i.degree_factor() * 1000.0) as u64)
            })
            .collect();
        let set: std::collections::HashSet<_> = sigs.iter().collect();
        assert_eq!(set.len(), GraphInput::ALL.len());
    }
}
