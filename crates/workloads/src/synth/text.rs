//! Zipfian text synthesis.
//!
//! Word frequencies in natural-language corpora follow Zipf's law; the
//! BigDataBench text synthesizer preserves this when scaling seed inputs.
//! [`TextSynth`] draws words from a synthetic vocabulary with
//! `P(rank r) ∝ 1 / r^s`, producing corpora whose distinct-word growth and
//! skew drive the hash-combine and sort behaviour of the text benchmarks.
//! [`LabeledCorpus`] adds per-class vocabulary bias for NaiveBayes.

use rand::RngExt;
use rayon::prelude::*;

use simprof_stats::{seeded, split_seed, SeedRng};

/// Seeded Zipfian text generator.
#[derive(Debug, Clone)]
pub struct TextSynth {
    /// Vocabulary size.
    pub vocab: usize,
    /// Zipf exponent (1.0 ≈ natural language).
    pub exponent: f64,
    /// Words per line.
    pub words_per_line: usize,
    /// Cumulative distribution over ranks.
    cdf: Vec<f64>,
    words: Vec<String>,
}

impl TextSynth {
    /// Builds a generator with a `vocab`-word synthetic vocabulary.
    pub fn new(vocab: usize, exponent: f64, words_per_line: usize, seed: u64) -> Self {
        assert!(vocab > 0, "vocabulary must be non-empty");
        let mut weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / (r as f64).powf(exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        let words = Self::make_words(vocab, seed);
        Self { vocab, exponent, words_per_line, cdf: weights, words }
    }

    /// Synthesizes a vocabulary of distinct pronounceable-ish words.
    fn make_words(vocab: usize, seed: u64) -> Vec<String> {
        const C: &[u8] = b"bcdfghjklmnprstvz";
        const V: &[u8] = b"aeiou";
        let mut rng = seeded(split_seed(seed, 0x7E47));
        let mut out = Vec::with_capacity(vocab);
        let mut seen = std::collections::HashSet::new();
        while out.len() < vocab {
            let syllables = 1 + rng.random_range(0..3usize);
            let mut w = String::new();
            for _ in 0..=syllables {
                w.push(C[rng.random_range(0..C.len())] as char);
                w.push(V[rng.random_range(0..V.len())] as char);
            }
            if seen.insert(w.clone()) {
                out.push(w);
            }
        }
        out
    }

    fn draw_rank(&self, rng: &mut SeedRng) -> usize {
        let x: f64 = rng.random();
        self.cdf.partition_point(|&c| c < x).min(self.vocab - 1)
    }

    /// Draws one word.
    pub fn word<'a>(&'a self, rng: &mut SeedRng) -> &'a str {
        &self.words[self.draw_rank(rng)]
    }

    /// The vocabulary word at Zipf rank `rank` (0 = most frequent). Used by
    /// grep to pick a needle of known rarity.
    pub fn word_at(&self, rank: usize) -> &str {
        &self.words[rank.min(self.vocab - 1)]
    }

    /// Generates lines totalling approximately `bytes` of text.
    ///
    /// Two passes, bit-identical to the original single-pass generator at
    /// any worker count: pass 1 draws Zipf ranks sequentially (consuming
    /// the RNG stream in exactly the old order) and tracks produced bytes
    /// from the known word lengths; pass 2 assembles the rank lists into
    /// strings in parallel (pure lookups, order preserved by the pool).
    pub fn lines(&self, bytes: usize, seed: u64) -> Vec<String> {
        let mut rng = seeded(split_seed(seed, 0x11E5));
        let mut line_ranks: Vec<Vec<usize>> = Vec::new();
        let mut produced = 0usize;
        while produced < bytes {
            let mut ranks = Vec::with_capacity(self.words_per_line);
            let mut len = 0usize;
            for i in 0..self.words_per_line {
                let r = self.draw_rank(&mut rng);
                len += self.words[r].len() + usize::from(i > 0);
                ranks.push(r);
            }
            produced += len + 1;
            line_ranks.push(ranks);
        }
        line_ranks
            .into_par_iter()
            .map(|ranks| {
                let mut line = String::with_capacity(self.words_per_line * 7);
                for (i, &r) in ranks.iter().enumerate() {
                    if i > 0 {
                        line.push(' ');
                    }
                    line.push_str(&self.words[r]);
                }
                line
            })
            .collect()
    }
}

/// The text-input catalog for the text-workload input-sensitivity study —
/// the paper's stated future work (§IV-E: "for WordCount, the inputs with
/// different frequencies of words should be used"). Each variant changes
/// the corpus statistic that drives WordCount's memory behaviour: word-
/// frequency skew (the Zipf exponent) or vocabulary size (the hash-map
/// footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TextInput {
    /// The training input: natural-language-like skew (s = 1.0, 4 K words).
    Base,
    /// Heavier skew — a few words dominate (s = 1.3).
    Skewed,
    /// Flatter frequencies (s = 0.7): the hot set is much larger.
    Flat,
    /// Small vocabulary (1 K words): the whole map is cache resident.
    SmallVocab,
    /// Large vocabulary (16 K words): the map far exceeds the LLC.
    LargeVocab,
    /// Longer lines (30 words): scan-to-probe ratio shifts.
    LongLines,
}

impl TextInput {
    /// All inputs, training input first.
    pub const ALL: [TextInput; 6] = [
        TextInput::Base,
        TextInput::Skewed,
        TextInput::Flat,
        TextInput::SmallVocab,
        TextInput::LargeVocab,
        TextInput::LongLines,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            TextInput::Base => "Base",
            TextInput::Skewed => "Skewed",
            TextInput::Flat => "Flat",
            TextInput::SmallVocab => "SmallVocab",
            TextInput::LargeVocab => "LargeVocab",
            TextInput::LongLines => "LongLines",
        }
    }

    /// `(vocab, zipf exponent, words per line)` of the variant.
    pub fn params(self) -> (usize, f64, usize) {
        match self {
            TextInput::Base => (4_000, 1.0, 10),
            TextInput::Skewed => (4_000, 1.3, 10),
            TextInput::Flat => (4_000, 0.7, 10),
            TextInput::SmallVocab => (1_000, 1.0, 10),
            TextInput::LargeVocab => (16_000, 1.0, 10),
            TextInput::LongLines => (4_000, 1.0, 30),
        }
    }

    /// Synthesizes `bytes` of this input.
    pub fn lines(self, bytes: usize, seed: u64) -> Vec<String> {
        let (vocab, exponent, wpl) = self.params();
        TextSynth::new(vocab, exponent, wpl, split_seed(seed, 0x7E87 + self as u64))
            .lines(bytes, split_seed(seed, 0x11E5 + self as u64))
    }
}

/// A labelled corpus for NaiveBayes: each document belongs to one of
/// `classes` classes, and each class biases a disjoint slice of the
/// vocabulary so the classes are actually learnable.
#[derive(Debug, Clone)]
pub struct LabeledCorpus {
    /// Documents as `(class, line)` pairs.
    pub docs: Vec<(usize, String)>,
    /// Number of classes.
    pub classes: usize,
}

impl LabeledCorpus {
    /// Generates `bytes` of labelled documents over `classes` classes.
    pub fn generate(synth: &TextSynth, classes: usize, bytes: usize, seed: u64) -> Self {
        assert!(classes > 0);
        let mut rng = seeded(split_seed(seed, 0xBA7E5));
        let mut docs = Vec::new();
        let mut produced = 0usize;
        let marker_stride = synth.vocab.div_ceil(classes).max(1);
        while produced < bytes {
            let class = rng.random_range(0..classes);
            let mut line = String::new();
            for i in 0..synth.words_per_line {
                if i > 0 {
                    line.push(' ');
                }
                // Every third word is drawn from the class's marker slice of
                // the vocabulary, the rest from the global distribution.
                if i % 3 == 0 {
                    let idx = class * marker_stride + rng.random_range(0..marker_stride);
                    line.push_str(&synth.words[idx.min(synth.vocab - 1)]);
                } else {
                    line.push_str(synth.word(&mut rng));
                }
            }
            produced += line.len() + 1;
            docs.push((class, line));
        }
        Self { docs, classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn lines_reach_requested_bytes() {
        let s = TextSynth::new(500, 1.0, 8, 1);
        let lines = s.lines(10_000, 2);
        let total: usize = lines.iter().map(|l| l.len() + 1).sum();
        assert!(total >= 10_000);
        assert!(total < 12_000, "should not wildly overshoot: {total}");
    }

    #[test]
    fn zipf_skew_present() {
        let s = TextSynth::new(1000, 1.0, 10, 3);
        let lines = s.lines(200_000, 4);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for l in &lines {
            for w in l.split_whitespace() {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top word should be far more frequent than the median word.
        assert!(
            freqs[0] > 20 * freqs[freqs.len() / 2],
            "{} vs {}",
            freqs[0],
            freqs[freqs.len() / 2]
        );
        // But the distribution has a long tail of distinct words.
        assert!(counts.len() > 300, "{}", counts.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TextSynth::new(200, 1.0, 6, 7).lines(5_000, 9);
        let b = TextSynth::new(200, 1.0, 6, 7).lines(5_000, 9);
        let c = TextSynth::new(200, 1.0, 6, 7).lines(5_000, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vocabulary_is_distinct() {
        let s = TextSynth::new(300, 1.0, 5, 11);
        let set: std::collections::HashSet<&String> = s.words.iter().collect();
        assert_eq!(set.len(), 300);
    }

    #[test]
    fn text_inputs_differ_in_their_driving_statistic() {
        use std::collections::HashSet;
        let distinct = |input: TextInput| {
            let lines = input.lines(400_000, 3);
            lines.iter().flat_map(|l| l.split_whitespace()).collect::<HashSet<_>>().len()
        };
        let base = distinct(TextInput::Base);
        assert!(distinct(TextInput::SmallVocab) < base / 2);
        assert!(
            distinct(TextInput::LargeVocab) as f64 > base as f64 * 1.5,
            "{} vs {}",
            distinct(TextInput::LargeVocab),
            base
        );
        assert!(distinct(TextInput::Skewed) < base, "heavier skew → fewer distinct words seen");
    }

    #[test]
    fn labeled_corpus_classes_learnable() {
        let s = TextSynth::new(600, 1.0, 9, 5);
        let c = LabeledCorpus::generate(&s, 3, 60_000, 6);
        assert_eq!(c.classes, 3);
        assert!(c.docs.len() > 100);
        // Every class appears.
        for class in 0..3 {
            assert!(c.docs.iter().any(|&(cl, _)| cl == class));
        }
        // A class-0 marker word (vocab slice [0, 200)) that is globally rare
        // (rank 150) appears more often in class-0 docs than class-1 docs.
        let marker = &s.words[150];
        let count = |class: usize| {
            c.docs
                .iter()
                .filter(|&&(cl, _)| cl == class)
                .flat_map(|(_, l)| l.split_whitespace())
                .filter(|w| w == marker)
                .count()
        };
        assert!(count(0) >= count(1), "{} vs {}", count(0), count(1));
    }
}
