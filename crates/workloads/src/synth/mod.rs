//! Data synthesizers.
//!
//! The paper generates its inputs: text benchmarks use BigDataBench's data
//! synthesizer (scaled from real seed corpora), and the input-sensitivity
//! study synthesizes Kronecker graphs matching the connectivity of SNAP
//! graphs (§IV-E). This module provides both, fully seeded.

pub mod kronecker;
pub mod text;
