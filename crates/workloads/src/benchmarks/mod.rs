//! The twelve job builders (six benchmarks × two frameworks) plus shared
//! assembly helpers.
//!
//! Each builder takes the [`crate::WorkloadConfig`], the machine (for
//! address-space allocation), and the method registry, synthesizes its input
//! data, *really executes* the benchmark's computation, and returns the
//! [`simprof_engine::Job`] cost trace to schedule.

pub mod bayes;
pub mod cc;
pub mod grep;
pub mod pagerank;
pub mod sort;
pub mod wordcount;

use simprof_engine::{Hdfs, MethodId, WorkItem};
use simprof_sim::Machine;

/// Splits `n` elements into `p` near-equal contiguous ranges.
pub fn partition_ranges(n: usize, p: usize) -> Vec<(usize, usize)> {
    let p = p.max(1);
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Deterministic FNV-1a hash, used for key routing and key sorting so runs
/// do not depend on the process's `HashMap` seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Which reducer a key routes to.
pub fn route(key: &str, reducers: usize) -> usize {
    (fnv1a(key) % reducers.max(1) as u64) as usize
}

/// An HDFS-read work item over a fresh input region of `bytes`.
pub fn hdfs_read_item(
    hdfs: &Hdfs,
    machine: &mut Machine,
    bytes: u64,
    path: Vec<MethodId>,
    seed: u64,
) -> (simprof_sim::Region, WorkItem) {
    let region = machine.alloc(bytes.max(64));
    let item = WorkItem::io(path, bytes / 4 + 1, hdfs.read_stall(bytes), region, seed);
    (region, item)
}

/// An HDFS-write work item over a fresh output region of `bytes`.
pub fn hdfs_write_item(
    hdfs: &Hdfs,
    machine: &mut Machine,
    bytes: u64,
    path: Vec<MethodId>,
    seed: u64,
) -> WorkItem {
    let region = machine.alloc(bytes.max(64));
    WorkItem::io(path, bytes / 6 + 1, hdfs.write_stall(bytes), region, seed)
}

/// A local-spill work item (sorted map output, shuffle files).
pub fn spill_item(
    hdfs: &Hdfs,
    machine: &mut Machine,
    bytes: u64,
    path: Vec<MethodId>,
    seed: u64,
) -> WorkItem {
    let region = machine.alloc(bytes.max(64));
    WorkItem::io(path, bytes / 8 + 1, hdfs.spill_stall(bytes), region, seed)
}

/// Records per map-output spill (the `io.sort.mb` analog): when a mapper
/// emits more records than this, the buffer is sorted and spilled multiple
/// times and the spill files are merged on the map side — exactly Hadoop's
/// `MapOutputBuffer.sortAndSpill` + `mergeParts` behaviour.
pub const SPILL_RECORDS: usize = 32_768;

/// The full Hadoop map-output pipeline for one mapper's emitted key hashes:
/// per-spill quicksort (real sorting of each bounded buffer fill), a spill
/// write per buffer, and — when several spills happened — a map-side k-way
/// merge into the final map output file.
///
/// Returns the cost items in execution order.
pub fn map_side_sort_spill(
    mut keys: Vec<u64>,
    hdfs: &Hdfs,
    machine: &mut Machine,
    sort_path: Vec<MethodId>,
    spill_path: Vec<MethodId>,
    merge_path: Vec<MethodId>,
    seed: u64,
) -> Vec<WorkItem> {
    use simprof_engine::ops;
    let mut items = Vec::new();
    if keys.is_empty() {
        return items;
    }
    let spills = keys.len().div_ceil(SPILL_RECORDS);
    let mut runs: Vec<Vec<u64>> = Vec::with_capacity(spills);
    for (i, chunk) in keys.chunks_mut(SPILL_RECORDS).enumerate() {
        let region = machine.alloc(chunk.len() as u64 * 16);
        items.extend(ops::quicksort_trace(
            chunk,
            16,
            region,
            sort_path.clone(),
            seed.wrapping_add(i as u64),
        ));
        items.push(spill_item(
            hdfs,
            machine,
            chunk.len() as u64 * 16,
            spill_path.clone(),
            seed.wrapping_add(0x200 + i as u64),
        ));
        runs.push(chunk.to_vec());
    }
    if runs.len() > 1 {
        let total_bytes: u64 = keys.len() as u64 * 16;
        let merge_region = machine.alloc(total_bytes);
        let (_m, merge_items) =
            ops::kway_merge(&runs, 16, merge_region, merge_path, seed.wrapping_add(0x400));
        items.extend(merge_items);
        items.push(spill_item(hdfs, machine, total_bytes, spill_path, seed.wrapping_add(0x500)));
    }
    items
}

/// Spreads `stall` cycles across `items` proportionally to their
/// instruction counts — models IO (shuffle fetch, lazy reads) overlapped
/// with the compute that consumes it. Leftover rounding cycles go to the
/// last item.
pub fn overlap_stall(items: &mut [WorkItem], stall: u64) {
    let total: u64 = items.iter().map(|i| i.instrs).sum();
    if total == 0 || items.is_empty() {
        return;
    }
    let mut charged = 0u64;
    let last = items.len() - 1;
    for (idx, item) in items.iter_mut().enumerate() {
        let share = if idx == last { stall - charged } else { stall * item.instrs / total };
        item.io_stall_cycles += share;
        charged += share;
    }
}

/// Marks the first of `items` as the consumer of a shuffle fetch of
/// `bytes`. The benchmarks overlap fetch stalls into the compute that
/// consumes them; tagging the first consumer makes the fetch visible to
/// the engine's lost-fetch fault injection.
pub fn mark_shuffle_fetch(items: &mut [WorkItem], bytes: u64) {
    if let Some(first) = items.first_mut() {
        first.shuffle_bytes = bytes;
    }
}

/// A shuffle-fetch work item (remote read of map outputs).
pub fn fetch_item(
    hdfs: &Hdfs,
    machine: &mut Machine,
    bytes: u64,
    path: Vec<MethodId>,
    seed: u64,
) -> WorkItem {
    let region = machine.alloc(bytes.max(64));
    WorkItem::io(path, bytes / 6 + 1, hdfs.read_stall(bytes) / 2, region, seed)
        .with_shuffle_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_ranges_cover_exactly() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (5, 8), (0, 4), (100, 1)] {
            let r = partition_ranges(n, p);
            assert_eq!(r.len(), p.max(1));
            assert_eq!(r[0].0, 0);
            assert_eq!(r.last().unwrap().1, n);
            for w in r.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            let max = r.iter().map(|&(a, b)| b - a).max().unwrap();
            let min = r.iter().map(|&(a, b)| b - a).min().unwrap();
            assert!(max - min <= 1, "near-equal split");
        }
    }

    #[test]
    fn map_side_sort_spill_pipeline_shapes() {
        use simprof_sim::{Machine, MachineConfig};
        let hdfs = Hdfs::default();
        let mut machine = Machine::new(MachineConfig::scaled(1));
        // One buffer fill: sort items + one spill, no merge.
        let small: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let items = map_side_sort_spill(
            small,
            &hdfs,
            &mut machine,
            vec![MethodId(1)],
            vec![MethodId(2)],
            vec![MethodId(3)],
            1,
        );
        assert!(!items.iter().any(|i| i.path.contains(&MethodId(3))), "no merge for one spill");
        assert_eq!(items.iter().filter(|i| i.path.contains(&MethodId(2))).count(), 1);

        // Three buffer fills: three spills + a merge + the merged write.
        let big: Vec<u64> =
            (0..(SPILL_RECORDS as u64 * 2 + 100)).map(|i| i.wrapping_mul(2654435761)).collect();
        let items = map_side_sort_spill(
            big,
            &hdfs,
            &mut machine,
            vec![MethodId(1)],
            vec![MethodId(2)],
            vec![MethodId(3)],
            1,
        );
        assert!(items.iter().any(|i| i.path.contains(&MethodId(3))), "merge present");
        assert_eq!(
            items.iter().filter(|i| i.path.contains(&MethodId(2))).count(),
            3 + 1,
            "one spill per fill + the merged output write"
        );
        assert!(!items.is_empty());
        assert!(
            map_side_sort_spill(vec![], &hdfs, &mut machine, vec![], vec![], vec![], 1).is_empty()
        );
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a("spark"), fnv1a("spark"));
        assert_ne!(fnv1a("spark"), fnv1a("hadoop"));
        let mut buckets = [0usize; 4];
        for i in 0..1000 {
            buckets[route(&format!("word{i}"), 4)] += 1;
        }
        for &b in &buckets {
            assert!(b > 150, "routing roughly uniform: {buckets:?}");
        }
    }
}
