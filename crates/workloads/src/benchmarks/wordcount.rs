//! WordCount — the paper's running example (Fig. 1) and framework-comparison
//! study (§IV-F, Figs. 14–15).
//!
//! **Spark**: one shuffle-map stage fusing HDFS read → tokenize → *map-side
//! combine* (`Aggregator.combineValuesByKey`, the paper's map-side reduce
//! optimization) → shuffle write, then a small result stage combining the
//! combiners and writing to HDFS. Because the combine is fused with the map
//! and IO operations, the first stage forms one dominant phase, and the
//! second stage holds only ~1 % of units — the Fig. 14 structure.
//!
//! **Hadoop**: a map wave where tokenization (`TokenizerMapper.map` →
//! `MapOutputBuffer.collect`), the quicksort spill (`sortAndSpill` →
//! `QuickSort.sort`) and the combiner (`NewCombinerRunner.combine`) are
//! *separate* operations — three distinguishable phases with very different
//! CPI variance (Fig. 15) — followed by a reduce wave with fetch, k-way
//! merge, sum, and HDFS write.

use std::collections::HashMap;

use simprof_engine::hadoop::HadoopMethods;
use simprof_engine::spark::SparkMethods;
use simprof_engine::{ops, Job, MethodRegistry, OpClass, Stage, Task, WorkItem};
use simprof_sim::{AccessPattern, Machine};

use super::{
    fnv1a, hdfs_write_item, mark_shuffle_fetch, overlap_stall, partition_ranges, route, spill_item,
};
use crate::config::WorkloadConfig;
use crate::synth::text::TextSynth;

/// Vocabulary size for the WordCount corpus.
const VOCAB: usize = 4_000;
/// Modelled bytes of one (word, count) aggregation entry.
const ENTRY_BYTES: u64 = 56;
/// Records per hash-combine batch.
const BATCH: usize = 4_096;

fn corpus(cfg: &WorkloadConfig) -> Vec<String> {
    TextSynth::new(VOCAB, 1.0, 10, cfg.sub_seed(0x77C)).lines(cfg.text_bytes, cfg.sub_seed(2))
}

/// The fused map-side-combine kernel of Spark WordCount (§IV-F, Fig. 14).
///
/// `Aggregator.combineValuesByKey` *pulls* records through the upstream
/// map/IO iterators, so scanning, tokenizing and hash-probing interleave at
/// record granularity inside one operation. The paper observes that this
/// fusion makes the phase's performance "fairly stable" — the probe ramp is
/// diluted by the constant-cost scan work sharing every sampling unit.
///
/// Returns the real combined counts (sorted) and the interleaved item trace.
fn fused_scan_combine(
    lines: &[String],
    in_region: simprof_sim::Region,
    read_stall: u64,
    machine: &mut Machine,
    sm: &SparkMethods,
    leaves: &FusedLeaves,
    seed: u64,
) -> (Vec<(String, i64)>, Vec<WorkItem>) {
    use simprof_engine::ops::costs;
    const CHUNK_LINES: usize = 16;

    // Real incremental aggregation, with per-chunk checkpoints.
    let mut map: HashMap<String, i64> = HashMap::new();
    // (bytes, tokens, distinct-after-chunk)
    let mut checkpoints: Vec<(u64, u64, u64)> = Vec::new();
    for chunk in lines.chunks(CHUNK_LINES) {
        let bytes: u64 = chunk.iter().map(|l| l.len() as u64 + 1).sum();
        let mut tokens = 0u64;
        for line in chunk {
            for w in line.split_whitespace() {
                tokens += 1;
                *map.entry(w.to_owned()).or_insert(0) += 1;
            }
        }
        checkpoints.push((bytes, tokens, map.len() as u64));
    }

    let total_bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
    let map_region = machine.alloc((map.len() as u64 * ENTRY_BYTES).max(64));
    let mut items = Vec::with_capacity(checkpoints.len() * 2);
    for (i, &(bytes, tokens, distinct)) in checkpoints.iter().enumerate() {
        // Scan chunk: record-reader + tokenizer pulled by the combiner. The
        // observed leaf frame varies chunk to chunk, as it would under a
        // real sampling profiler walking deep JVM stacks.
        let scan_leaf =
            leaves.scan[(i.wrapping_mul(2654435761) ^ seed as usize) % leaves.scan.len()];
        let scan_instrs = bytes * costs::TOKENIZE_PER_BYTE + tokens * costs::TOKEN_EMIT;
        let stall = (read_stall * bytes).checked_div(total_bytes).unwrap_or(0);
        items.push(
            WorkItem::compute(
                vec![sm.combine_values_by_key, sm.map_partitions_with_index, scan_leaf],
                scan_instrs,
                costs::SEQ_APKI,
                AccessPattern::Sequential,
                in_region,
                seed.wrapping_add(2 * i as u64),
            )
            .with_io_stall(stall),
        );
        // Probe chunk over the map as grown so far.
        let probe_leaf =
            leaves.probe[(i.wrapping_mul(40503) ^ (seed as usize >> 3)) % leaves.probe.len()];
        let live = simprof_sim::Region::new(map_region.base, (distinct * ENTRY_BYTES).max(64));
        items.push(WorkItem::compute(
            vec![sm.combine_values_by_key, sm.append_only_map_change_value, probe_leaf],
            tokens * costs::HASH_PROBE,
            costs::HASH_APKI,
            AccessPattern::Zipf,
            live,
            seed.wrapping_add(2 * i as u64 + 1),
        ));
    }
    let mut combined: Vec<(String, i64)> = map.into_iter().collect();
    combined.sort_unstable();
    (combined, items)
}

/// Leaf frames observed below the fused combine operation.
struct FusedLeaves {
    scan: Vec<simprof_engine::MethodId>,
    probe: Vec<simprof_engine::MethodId>,
}

impl FusedLeaves {
    fn intern(reg: &mut MethodRegistry, tokenize_fn: simprof_engine::MethodId) -> Self {
        Self {
            scan: vec![
                tokenize_fn,
                reg.intern("org.apache.hadoop.io.Text.decode", OpClass::Map),
                reg.intern("java.util.StringTokenizer.nextToken", OpClass::Map),
                reg.intern("org.apache.hadoop.util.LineReader.readLine", OpClass::Map),
                reg.intern("scala.collection.Iterator$$anon$12.hasNext", OpClass::Map),
            ],
            probe: vec![
                reg.intern(
                    "org.apache.spark.util.collection.AppendOnlyMap.incrementSize",
                    OpClass::Reduce,
                ),
                reg.intern(
                    "org.apache.spark.unsafe.hash.Murmur3_x86_32.hashUnsafeWords",
                    OpClass::Reduce,
                ),
                reg.intern("scala.collection.Iterator$$anon$11.next", OpClass::Reduce),
                reg.intern("java.lang.String.equals", OpClass::Reduce),
                reg.intern(
                    "org.apache.spark.util.collection.SizeTracker.afterUpdate",
                    OpClass::Reduce,
                ),
            ],
        }
    }
}

/// Builds the Spark WordCount job on the default corpus.
pub fn spark(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let lines = corpus(cfg);
    spark_with_corpus(cfg, machine, reg, &lines)
}

/// Builds the Spark WordCount job on an explicit corpus — the entry point of
/// the text-input sensitivity study (the paper's stated future work).
pub fn spark_with_corpus(
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    reg: &mut MethodRegistry,
    lines: &[String],
) -> Job {
    let sm = SparkMethods::intern(reg);
    let tokenize_fn = reg.intern("org.bigdatabench.wc.TokenizeFn.apply", OpClass::Map);
    let sum_fn = reg.intern("org.bigdatabench.wc.SumFn.apply", OpClass::Reduce);
    let leaves = FusedLeaves::intern(reg, tokenize_fn);
    let ranges = partition_ranges(lines.len(), cfg.partitions);

    let mut reducer_inputs: Vec<Vec<(String, i64)>> = vec![Vec::new(); cfg.reducers];
    let mut map_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let slice = &lines[lo..hi];
        let seed = cfg.sub_seed(100 + p as u64);
        let bytes: u64 = slice.iter().map(|l| l.len() as u64 + 1).sum();
        let mut items = Vec::new();

        // The fused map-side combine (read + tokenize + probe interleaved,
        // read stalls overlapped record by record — Fig. 14's structure).
        let in_region = machine.alloc(bytes.max(64));
        let (combined, fused_items) = fused_scan_combine(
            slice,
            in_region,
            cfg.hdfs.read_stall(bytes),
            machine,
            &sm,
            &leaves,
            seed,
        );
        items.extend(fused_items);

        let out_bytes = combined.len() as u64 * 16;
        items.push(spill_item(
            &cfg.hdfs,
            machine,
            out_bytes,
            vec![sm.shuffle_writer_write, sm.serialize_object],
            seed,
        ));
        for (w, c) in combined {
            let r = route(&w, cfg.reducers);
            reducer_inputs[r].push((w, c));
        }
        map_tasks.push(Task::new(sm.shuffle_map_base(), items));
    }

    let mut reduce_tasks = Vec::with_capacity(cfg.reducers);
    for (r, pairs) in reducer_inputs.into_iter().enumerate() {
        let seed = cfg.sub_seed(200 + r as u64);
        let mut items = Vec::new();
        let fetch_bytes = pairs.len() as u64 * 16;
        let fetch_stall = cfg.shuffle_fetch_stall(fetch_bytes);
        let (final_map, combine_items) = ops::hash_combine(
            pairs,
            |a, b| *a += b,
            ENTRY_BYTES,
            BATCH,
            vec![sm.combine_combiners_by_key, sum_fn],
            AccessPattern::Zipf,
            machine,
            seed,
        );
        let mut combine_items = combine_items;
        overlap_stall(&mut combine_items, fetch_stall);
        mark_shuffle_fetch(&mut combine_items, fetch_bytes);
        items.extend(combine_items);
        let out = final_map.len() as u64 * 14;
        items.push(hdfs_write_item(&cfg.hdfs, machine, out, vec![sm.dfs_write], seed));
        reduce_tasks.push(Task::new(sm.result_base(), items));
    }

    Job::new(vec![Stage::new("wc-sp-stage0", map_tasks), Stage::new("wc-sp-stage1", reduce_tasks)])
}

/// Builds the Hadoop WordCount job.
pub fn hadoop(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let hm = HadoopMethods::intern(reg);
    let mapper = reg.intern("org.bigdatabench.wc.TokenizerMapper.map", OpClass::Map);
    let reducer_m = reg.intern("org.bigdatabench.wc.IntSumReducer.reduce", OpClass::Reduce);
    let lines = corpus(cfg);
    let ranges = partition_ranges(lines.len(), cfg.partitions);

    // Per reducer: one sorted run of key hashes per mapper, plus the real
    // (word, count) pairs for the reduce computation.
    let mut runs_per_reducer: Vec<Vec<Vec<u64>>> = vec![Vec::new(); cfg.reducers];
    let mut pairs_per_reducer: Vec<Vec<(String, i64)>> = vec![Vec::new(); cfg.reducers];

    let mut map_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let slice = &lines[lo..hi];
        let seed = cfg.sub_seed(300 + p as u64);
        let bytes: u64 = slice.iter().map(|l| l.len() as u64 + 1).sum();
        let mut items = Vec::new();

        // The record reader feeds the mapper lazily: HDFS read stalls are
        // overlapped with tokenization rather than forming a prefix phase.
        let in_region = machine.alloc(bytes.max(64));
        let (tokens, tok_item) =
            ops::tokenize(slice, vec![mapper, hm.map_output_buffer_collect], in_region, seed);
        items.push(tok_item.with_io_stall(cfg.hdfs.read_stall(bytes)));

        // sortAndSpill: the real bounded-buffer pipeline — one quicksort +
        // spill per buffer fill, plus a map-side merge when the mapper
        // overflowed its buffer more than once.
        let key_hashes: Vec<u64> = tokens.iter().map(|t| fnv1a(t)).collect();
        items.extend(super::map_side_sort_spill(
            key_hashes,
            &cfg.hdfs,
            machine,
            vec![hm.sort_and_spill, hm.quick_sort],
            vec![hm.sort_and_spill, hm.ifile_writer_append],
            vec![hm.merger_merge],
            seed,
        ));

        // Combiner over the (sorted) pairs.
        let pairs = tokens.iter().map(|t| (t.to_string(), 1i64));
        let (combined, combine_items) = ops::hash_combine(
            pairs,
            |a, b| *a += b,
            ENTRY_BYTES,
            BATCH,
            vec![hm.combiner_combine, reducer_m],
            AccessPattern::Zipf,
            machine,
            seed,
        );
        items.extend(combine_items);

        // Compress + spill the combined output (§IV-A optimizations).
        let out_bytes = combined.len() as u64 * 16;
        items.push(spill_item(
            &cfg.hdfs,
            machine,
            out_bytes,
            vec![hm.codec_compress, hm.ifile_writer_append],
            seed,
        ));

        // Route real outputs to reducers; each mapper contributes one sorted
        // run per reducer.
        let mut per_r: Vec<Vec<u64>> = vec![Vec::new(); cfg.reducers];
        for (w, c) in combined {
            let r = route(&w, cfg.reducers);
            per_r[r].push(fnv1a(&w));
            pairs_per_reducer[r].push((w, c));
        }
        for (r, mut run) in per_r.into_iter().enumerate() {
            run.sort_unstable();
            runs_per_reducer[r].push(run);
        }
        map_tasks.push(Task::new(hm.map_base(), items));
    }

    let mut reduce_tasks = Vec::with_capacity(cfg.reducers);
    for (r, runs) in runs_per_reducer.into_iter().enumerate() {
        let seed = cfg.sub_seed(400 + r as u64);
        let mut items = Vec::new();
        let total_keys: usize = runs.iter().map(Vec::len).sum();
        let fetch_bytes = total_keys as u64 * 16;
        let merge_region = machine.alloc(fetch_bytes.max(64));
        let (_merged, mut merge_items) =
            ops::kway_merge(&runs, 16, merge_region, vec![hm.merger_merge], seed);
        overlap_stall(&mut merge_items, cfg.shuffle_fetch_stall(fetch_bytes));
        mark_shuffle_fetch(&mut merge_items, fetch_bytes);
        items.extend(merge_items);

        // The real reduce: sum counts per word (sequential over sorted runs).
        let pairs = std::mem::take(&mut pairs_per_reducer[r]);
        let mut sums: HashMap<String, i64> = HashMap::new();
        for (w, c) in pairs {
            *sums.entry(w).or_insert(0) += c;
        }
        let reduce_instrs = total_keys as u64 * 14;
        items.push(WorkItem::compute(
            vec![reducer_m],
            reduce_instrs,
            ops::costs::SEQ_APKI,
            AccessPattern::Sequential,
            merge_region,
            seed,
        ));

        let out = sums.len() as u64 * 14;
        items.push(hdfs_write_item(&cfg.hdfs, machine, out, vec![hm.dfs_write], seed));
        reduce_tasks.push(Task::new(hm.reduce_base(), items));
    }

    Job::new(vec![Stage::new("wc-hp-map", map_tasks), Stage::new("wc-hp-reduce", reduce_tasks)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_sim::MachineConfig;

    fn setup() -> (WorkloadConfig, Machine, MethodRegistry) {
        let cfg = WorkloadConfig::tiny(11);
        (cfg, Machine::new(MachineConfig::scaled(2)), MethodRegistry::new())
    }

    #[test]
    fn spark_job_has_two_stages() {
        let (cfg, mut m, mut reg) = setup();
        let job = spark(&cfg, &mut m, &mut reg);
        assert_eq!(job.stages.len(), 2);
        assert_eq!(job.stages[0].tasks.len(), cfg.partitions);
        assert_eq!(job.stages[1].tasks.len(), cfg.reducers);
        assert!(job.total_instrs() > 1_000_000);
        // Map stage dominates (the Fig. 14 structure).
        assert!(job.stages[0].total_instrs() > 5 * job.stages[1].total_instrs());
    }

    #[test]
    fn hadoop_job_has_sort_items() {
        let (cfg, mut m, mut reg) = setup();
        let job = hadoop(&cfg, &mut m, &mut reg);
        assert_eq!(job.stages.len(), 2);
        let sort_id = reg.lookup("org.apache.hadoop.util.QuickSort.sort").unwrap();
        let sort_instrs: u64 = job.stages[0]
            .tasks
            .iter()
            .flat_map(|t| &t.items)
            .filter(|i| i.path.contains(&sort_id))
            .map(|i| i.instrs)
            .sum();
        assert!(sort_instrs > 100_000, "hadoop map wave quicksorts: {sort_instrs}");
    }

    #[test]
    fn fused_combine_counts_match_naive_recount() {
        let cfg = WorkloadConfig::tiny(41);
        let lines = corpus(&cfg);
        let mut m = Machine::new(MachineConfig::scaled(1));
        let mut reg = MethodRegistry::new();
        let sm = SparkMethods::intern(&mut reg);
        let tok = reg.intern("t", OpClass::Map);
        let leaves = FusedLeaves::intern(&mut reg, tok);
        let region = m.alloc(1024);
        let (combined, items) = fused_scan_combine(&lines, region, 0, &mut m, &sm, &leaves, 1);
        // Independent recount.
        let mut naive: HashMap<&str, i64> = HashMap::new();
        for l in &lines {
            for w in l.split_whitespace() {
                *naive.entry(w).or_insert(0) += 1;
            }
        }
        assert_eq!(combined.len(), naive.len());
        for (w, c) in &combined {
            assert_eq!(naive[w.as_str()], *c, "count for {w}");
        }
        // Sorted output, alternating scan/probe items.
        assert!(combined.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(items.len() >= 4 && items.len() % 2 == 0);
    }

    #[test]
    fn deterministic_construction() {
        let (cfg, mut m1, mut r1) = setup();
        let j1 = spark(&cfg, &mut m1, &mut r1);
        let (cfg2, mut m2, mut r2) = setup();
        let j2 = spark(&cfg2, &mut m2, &mut r2);
        assert_eq!(j1, j2);
    }

    #[test]
    fn frameworks_share_corpus_but_differ_in_structure() {
        let (cfg, mut m, mut reg) = setup();
        let sp = spark(&cfg, &mut m, &mut reg);
        let hp = hadoop(&cfg, &mut m, &mut reg);
        // Hadoop runs the explicit sort, so its job is bigger.
        assert!(hp.total_instrs() > sp.total_instrs());
    }
}
