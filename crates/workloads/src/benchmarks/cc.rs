//! Connected Components — label propagation on a synthesized Kronecker
//! graph (BigDataBench's graph-analytics workload).
//!
//! The real algorithm runs at build time: synchronous min-label propagation
//! over the undirected graph until convergence (capped). Each superstep's
//! *actual* activity — how many vertices changed, how many edges fired, how
//! many messages each partition received — sizes that superstep's work
//! items, so later supersteps shrink and the `aggregateUsingIndex` phase
//! shows the time-varying behaviour the paper highlights (§IV-E: the phase
//! "ha[s] different performances at different execution stages").
//!
//! **Spark** (GraphX-like): per superstep, an `aggregateMessages` stage over
//! edge partitions and an `aggregateUsingIndex`/`innerJoin` stage over
//! vertex partitions — many distinct methods, which is why cc_sp has the
//! most phases in Fig. 9. **Hadoop**: one MapReduce job per superstep with
//! the full map → sort → combine → spill pipeline.

use simprof_engine::hadoop::HadoopMethods;
use simprof_engine::spark::SparkMethods;
use simprof_engine::{ops, Job, MethodRegistry, OpClass, Stage, Task, WorkItem};
use simprof_sim::{AccessPattern, Machine, Region};

use super::{hdfs_write_item, mark_shuffle_fetch, overlap_stall, partition_ranges, spill_item};
use crate::config::WorkloadConfig;
use crate::synth::kronecker::{GraphInput, Kronecker, SynthGraph};

/// Per-superstep activity record from the real propagation.
#[derive(Debug, Clone)]
pub struct SuperstepStats {
    /// Edges fired from each source vertex-partition.
    pub edges_from: Vec<usize>,
    /// Messages received by each target vertex-partition.
    pub msgs_to: Vec<usize>,
    /// The actual message target ids emitted from each source partition
    /// (used by the Hadoop builder's spill sort).
    pub targets_from: Vec<Vec<u64>>,
}

/// The real label propagation, with per-superstep activity accounting.
#[derive(Debug, Clone)]
pub struct CcRun {
    /// Final component labels.
    pub labels: Vec<u32>,
    /// One entry per executed superstep.
    pub supersteps: Vec<SuperstepStats>,
}

/// Makes the directed CSR undirected by concatenating forward and reverse
/// adjacency.
pub fn undirected(g: &SynthGraph) -> SynthGraph {
    let n = g.n;
    let mut deg = vec![0u32; n + 1];
    for v in 0..n {
        deg[v + 1] += g.degree(v) as u32;
    }
    for &t in &g.targets {
        deg[t as usize + 1] += 1;
    }
    for i in 0..n {
        deg[i + 1] += deg[i];
    }
    let mut targets = vec![0u32; g.targets.len() * 2];
    let mut cursor = deg.clone();
    for v in 0..n {
        for &t in g.neighbors(v) {
            targets[cursor[v] as usize] = t;
            cursor[v] += 1;
            targets[cursor[t as usize] as usize] = v as u32;
            cursor[t as usize] += 1;
        }
    }
    SynthGraph { n, offsets: deg, targets }
}

/// Runs synchronous min-label propagation, recording per-superstep activity
/// for `partitions` vertex partitions. Stops at convergence or `cap`
/// supersteps.
pub fn propagate(und: &SynthGraph, partitions: usize, cap: usize) -> CcRun {
    let n = und.n;
    let ranges = partition_ranges(n, partitions);
    let part_of = |v: usize| -> usize {
        ranges.iter().position(|&(lo, hi)| v >= lo && v < hi).expect("vertex in some partition")
    };
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut supersteps = Vec::new();

    for _ in 0..cap.max(1) {
        let mut next = labels.clone();
        let mut edges_from = vec![0usize; partitions];
        let mut msgs_to = vec![0usize; partitions];
        let mut targets_from: Vec<Vec<u64>> = vec![Vec::new(); partitions];
        let mut any_active = false;
        for v in 0..n {
            if !active[v] {
                continue;
            }
            any_active = true;
            let p = part_of(v);
            for &t in und.neighbors(v) {
                edges_from[p] += 1;
                targets_from[p].push(t as u64);
                msgs_to[part_of(t as usize)] += 1;
                if labels[v] < next[t as usize] {
                    next[t as usize] = labels[v];
                }
            }
        }
        if !any_active {
            break;
        }
        let mut changed = false;
        for v in 0..n {
            active[v] = next[v] < labels[v];
            changed |= active[v];
        }
        labels = next;
        supersteps.push(SuperstepStats { edges_from, msgs_to, targets_from });
        if !changed {
            break;
        }
    }
    CcRun { labels, supersteps }
}

/// Instruction costs of the graph kernels.
mod gcosts {
    /// Per edge scanned in the edge-partition pass.
    pub const EDGE_SCAN: u64 = 12;
    /// Per message gathered against the vertex-value array.
    pub const GATHER: u64 = 10;
    /// Per message combined in `aggregateUsingIndex`.
    pub const COMBINE: u64 = 14;
    /// Per vertex in the apply/join pass.
    pub const APPLY: u64 = 10;
    /// Per message emitted by a Hadoop CC/PageRank mapper.
    pub const HP_EMIT: u64 = 16;
    /// Per message in the Hadoop min/sum reduce.
    pub const HP_REDUCE: u64 = 12;
}

/// Shared per-graph regions allocated once per job.
pub(crate) struct GraphRegions {
    /// Edge array region.
    pub edges: Region,
    /// Vertex-value array region (labels / ranks).
    pub values: Region,
}

pub(crate) fn alloc_graph_regions(machine: &mut Machine, und: &SynthGraph) -> GraphRegions {
    GraphRegions {
        edges: machine.alloc(und.targets.len() as u64 * 8),
        values: machine.alloc(und.n as u64 * 8),
    }
}

/// The initial "load graph from HDFS" stage (both frameworks' Spark-side
/// variant; Hadoop reloads per superstep instead).
fn load_stage(
    cfg: &WorkloadConfig,
    sm: &SparkMethods,
    und: &SynthGraph,
    regions: &GraphRegions,
) -> Stage {
    let parts = partition_ranges(und.targets.len(), cfg.partitions);
    let tasks = parts
        .iter()
        .enumerate()
        .map(|(p, &(lo, hi))| {
            let seed = cfg.sub_seed(2000 + p as u64);
            let bytes = (hi - lo) as u64 * 8;
            let build = WorkItem::compute(
                vec![sm.hadoop_rdd_compute, sm.map_edge_partitions],
                (hi - lo) as u64 * 6,
                ops::costs::SEQ_APKI,
                AccessPattern::Sequential,
                regions.edges,
                seed,
            )
            .with_io_stall(cfg.hdfs.read_stall(bytes));
            Task::new(sm.shuffle_map_base(), vec![build])
        })
        .collect();
    Stage::new("graph-load", tasks)
}

/// Builds the two GraphX-style stages of one superstep.
#[allow(clippy::too_many_arguments)]
pub(crate) fn graphx_superstep_stages(
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    sm: &SparkMethods,
    regions: &GraphRegions,
    stats_edges_from: &[usize],
    stats_msgs_to: &[usize],
    step: usize,
    name: &str,
) -> Vec<Stage> {
    // `aggregateMessages` fuses the edge scan with message gathering in one
    // pass over the edge partition, so the cost items interleave at fine
    // (sub-sampling-unit) granularity — every sampling unit of the phase
    // sees the same scan/gather mixture instead of bimodal pure units.
    const CHUNK_EDGES: usize = 600;
    let mut gather_tasks = Vec::new();
    for (p, &edges) in stats_edges_from.iter().enumerate() {
        if edges == 0 {
            continue;
        }
        let seed = cfg.sub_seed(3000 + step as u64 * 64 + p as u64);
        let mut items = Vec::new();
        let mut remaining = edges;
        let mut i = 0u64;
        while remaining > 0 {
            let chunk = remaining.min(CHUNK_EDGES) as u64;
            items.push(WorkItem::compute(
                vec![sm.aggregate_messages, sm.map_edge_partitions],
                chunk * gcosts::EDGE_SCAN,
                ops::costs::SEQ_APKI,
                AccessPattern::Sequential,
                regions.edges,
                seed.wrapping_add(2 * i),
            ));
            items.push(WorkItem::compute(
                vec![sm.aggregate_messages],
                chunk * gcosts::GATHER,
                ops::costs::HASH_APKI,
                AccessPattern::Random,
                regions.values,
                seed.wrapping_add(2 * i + 1),
            ));
            remaining -= chunk as usize;
            i += 1;
        }
        gather_tasks.push(Task::new(sm.shuffle_map_base(), items));
    }

    // The vertex-program side likewise fuses combining the incoming messages
    // with applying the update to the vertex values.
    let mut apply_tasks = Vec::new();
    let v_parts = partition_ranges(regions.values.bytes as usize / 8, cfg.partitions);
    for (p, &msgs) in stats_msgs_to.iter().enumerate() {
        if msgs == 0 {
            continue;
        }
        let seed = cfg.sub_seed(4000 + step as u64 * 64 + p as u64);
        let msg_region = machine.alloc((msgs as u64 * 16).max(64));
        let (lo, hi) = v_parts[p.min(v_parts.len() - 1)];
        let verts = (hi - lo).max(1);
        let mut items = Vec::new();
        let mut remaining = msgs;
        let mut i = 0u64;
        while remaining > 0 {
            let chunk = remaining.min(CHUNK_EDGES) as u64;
            items.push(WorkItem::compute(
                vec![sm.aggregate_using_index],
                chunk * gcosts::COMBINE,
                ops::costs::HASH_APKI,
                AccessPattern::Random,
                msg_region,
                seed.wrapping_add(2 * i),
            ));
            let vchunk = (verts as u64 * chunk / msgs as u64).max(1);
            items.push(WorkItem::compute(
                vec![sm.vertex_inner_join],
                vchunk * gcosts::APPLY,
                ops::costs::SEQ_APKI,
                AccessPattern::Sequential,
                Region::new(regions.values.base + lo as u64 * 8, (verts as u64 * 8).max(64)),
                seed.wrapping_add(2 * i + 1),
            ));
            remaining -= chunk as usize;
            i += 1;
        }
        apply_tasks.push(Task::new(sm.result_base(), items));
    }

    // Ship updated vertex attributes back to the edge partitions
    // (ReplicatedVertexView.updateVertices): serialization-flavoured
    // streaming over the vertex values.
    let mut ship_tasks = Vec::new();
    for (p, &msgs) in stats_msgs_to.iter().enumerate() {
        if msgs == 0 {
            continue;
        }
        let seed = cfg.sub_seed(4500 + step as u64 * 64 + p as u64);
        let ship = WorkItem::compute(
            vec![sm.ship_vertex_attrs, sm.serialize_object],
            msgs as u64 * 8 + 1_000,
            ops::costs::SEQ_APKI * 2,
            AccessPattern::Sequential,
            regions.values,
            seed,
        )
        .with_io_stall(msgs as u64 * 2);
        ship_tasks.push(Task::new(sm.shuffle_map_base(), vec![ship]));
    }

    vec![
        Stage::new(format!("{name}-gather-{step}"), gather_tasks),
        Stage::new(format!("{name}-apply-{step}"), apply_tasks),
        Stage::new(format!("{name}-ship-{step}"), ship_tasks),
    ]
}

/// The Pregel initialization stage (GraphOps.outDegrees + initial vertex
/// values): one pass over the edges counting degrees.
pub(crate) fn init_degrees_stage(
    cfg: &WorkloadConfig,
    sm: &SparkMethods,
    regions: &GraphRegions,
    edges_per_partition: &[usize],
    name: &str,
) -> Stage {
    let tasks = edges_per_partition
        .iter()
        .enumerate()
        .filter(|&(_, &e)| e > 0)
        .map(|(p, &e)| {
            let seed = cfg.sub_seed(2500 + p as u64);
            let scan = WorkItem::compute(
                vec![sm.out_degrees, sm.map_edge_partitions],
                e as u64 * 7,
                ops::costs::SEQ_APKI,
                AccessPattern::Sequential,
                regions.edges,
                seed,
            );
            let count = WorkItem::compute(
                vec![sm.out_degrees, sm.aggregate_using_index],
                e as u64 * 5,
                ops::costs::HASH_APKI,
                AccessPattern::Random,
                regions.values,
                seed ^ 1,
            );
            Task::new(sm.shuffle_map_base(), vec![scan, count])
        })
        .collect();
    Stage::new(format!("{name}-init-degrees"), tasks)
}

/// Builds the Spark Connected Components job.
pub fn spark(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let sm = SparkMethods::intern(reg);
    let g = Kronecker::for_input(GraphInput::Google, cfg.graph_scale, cfg.graph_degree)
        .generate(cfg.sub_seed(6));
    spark_on_graph(cfg, machine, reg, &sm, &g)
}

/// Spark CC on an explicit graph (the input-sensitivity study sweeps Table
/// II inputs through this entry point).
pub fn spark_on_graph(
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    _reg: &mut MethodRegistry,
    sm: &SparkMethods,
    g: &SynthGraph,
) -> Job {
    let und = undirected(g);
    let run = propagate(&und, cfg.partitions, cfg.max_iterations);
    let regions = alloc_graph_regions(machine, &und);

    let mut stages = vec![load_stage(cfg, sm, &und, &regions)];
    if let Some(first) = run.supersteps.first() {
        stages.push(init_degrees_stage(cfg, sm, &regions, &first.edges_from, "cc-sp"));
    }
    for (step, ss) in run.supersteps.iter().enumerate() {
        stages.extend(graphx_superstep_stages(
            cfg,
            machine,
            sm,
            &regions,
            &ss.edges_from,
            &ss.msgs_to,
            step,
            "cc-sp",
        ));
    }
    // Final write of component labels.
    let seed = cfg.sub_seed(2900);
    let write = Task::new(
        sm.result_base(),
        vec![hdfs_write_item(&cfg.hdfs, machine, und.n as u64 * 8, vec![sm.dfs_write], seed)],
    );
    stages.push(Stage::new("cc-sp-write", vec![write]));
    Job::new(stages)
}

/// Builds the Hadoop Connected Components job: one MapReduce per superstep.
pub fn hadoop(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let g = Kronecker::for_input(GraphInput::Google, cfg.graph_scale, cfg.graph_degree)
        .generate(cfg.sub_seed(6));
    hadoop_on_graph(cfg, machine, reg, &g)
}

/// Hadoop CC on an explicit graph (input-sensitivity entry point).
pub fn hadoop_on_graph(
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    reg: &mut MethodRegistry,
    g: &SynthGraph,
) -> Job {
    let hm = HadoopMethods::intern(reg);
    let mapper = reg.intern("org.bigdatabench.cc.MinLabelMapper.map", OpClass::Map);
    let reducer_m = reg.intern("org.bigdatabench.cc.MinLabelReducer.reduce", OpClass::Reduce);
    let und = undirected(g);
    let hp_cap = (cfg.max_iterations / 4).max(2);
    let run = propagate(&und, cfg.partitions, hp_cap);
    let regions = alloc_graph_regions(machine, &und);

    let mut stages = Vec::new();
    for (step, ss) in run.supersteps.iter().enumerate() {
        stages.extend(hadoop_superstep_stages(
            cfg, machine, &hm, mapper, reducer_m, &regions, ss, step, "cc-hp",
        ));
    }
    Job::new(stages)
}

/// One Hadoop superstep: map wave (read state, emit messages, sort, combine,
/// spill) + reduce wave (fetch, merge, reduce, write).
#[allow(clippy::too_many_arguments)]
pub(crate) fn hadoop_superstep_stages(
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    hm: &HadoopMethods,
    mapper: simprof_engine::MethodId,
    reducer_m: simprof_engine::MethodId,
    regions: &GraphRegions,
    ss: &SuperstepStats,
    step: usize,
    name: &str,
) -> Vec<Stage> {
    let mut map_tasks = Vec::new();
    let mut msgs_per_reducer = vec![0usize; cfg.reducers];
    let mut runs_per_reducer: Vec<Vec<Vec<u64>>> = vec![Vec::new(); cfg.reducers];

    for (p, targets) in ss.targets_from.iter().enumerate() {
        if targets.is_empty() {
            continue;
        }
        let seed = cfg.sub_seed(5000 + step as u64 * 64 + p as u64);
        let mut items = Vec::new();
        let state_bytes = regions.values.bytes / cfg.partitions as u64;
        // Emit min-label messages: random lookups into the label array, with
        // the state/edge re-read overlapped.
        items.push(
            WorkItem::compute(
                vec![mapper, hm.map_output_buffer_collect],
                targets.len() as u64 * gcosts::HP_EMIT,
                ops::costs::HASH_APKI,
                AccessPattern::Random,
                regions.values,
                seed,
            )
            .with_io_stall(cfg.hdfs.read_stall(state_bytes + targets.len() as u64 * 8)),
        );
        // Spill sort over the real message target ids.
        let mut keys = targets.clone();
        let buf = machine.alloc(keys.len() as u64 * 16);
        items.extend(ops::quicksort_trace(
            &mut keys,
            16,
            buf,
            vec![hm.sort_and_spill, hm.quick_sort],
            seed,
        ));
        // Combine messages per target.
        let pairs = targets.iter().map(|&t| (t, 1u64));
        let (combined, combine_items) = ops::hash_combine(
            pairs,
            |a, b| *a += b,
            32,
            4_096,
            vec![hm.combiner_combine, reducer_m],
            AccessPattern::Zipf,
            machine,
            seed,
        );
        items.extend(combine_items);
        let out = combined.len() as u64 * 16;
        items.push(spill_item(
            &cfg.hdfs,
            machine,
            out,
            vec![hm.codec_compress, hm.ifile_writer_append],
            seed,
        ));
        // Route combined messages to reducers by target-id range.
        let mut per_r: Vec<Vec<u64>> = vec![Vec::new(); cfg.reducers];
        let n = regions.values.bytes as usize / 8;
        for &(t, _) in &combined {
            let r = ((t as usize) * cfg.reducers / n.max(1)).min(cfg.reducers - 1);
            per_r[r].push(t);
            msgs_per_reducer[r] += 1;
        }
        for (r, mut run) in per_r.into_iter().enumerate() {
            run.sort_unstable();
            runs_per_reducer[r].push(run);
        }
        map_tasks.push(Task::new(hm.map_base(), items));
    }

    let mut reduce_tasks = Vec::new();
    for (r, runs) in runs_per_reducer.into_iter().enumerate() {
        if msgs_per_reducer[r] == 0 {
            continue;
        }
        let seed = cfg.sub_seed(5500 + step as u64 * 64 + r as u64);
        let mut items = Vec::new();
        let bytes = msgs_per_reducer[r] as u64 * 16;
        let merge_region = machine.alloc(bytes.max(64));
        let (_m, mut merge_items) =
            ops::kway_merge(&runs, 16, merge_region, vec![hm.merger_merge], seed);
        overlap_stall(&mut merge_items, cfg.shuffle_fetch_stall(bytes));
        mark_shuffle_fetch(&mut merge_items, bytes);
        items.extend(merge_items);
        items.push(WorkItem::compute(
            vec![reducer_m],
            msgs_per_reducer[r] as u64 * gcosts::HP_REDUCE,
            ops::costs::SEQ_APKI,
            AccessPattern::Sequential,
            merge_region,
            seed,
        ));
        items.push(hdfs_write_item(
            &cfg.hdfs,
            machine,
            regions.values.bytes / cfg.reducers as u64,
            vec![hm.dfs_write],
            seed,
        ));
        reduce_tasks.push(Task::new(hm.reduce_base(), items));
    }

    vec![
        Stage::new(format!("{name}-map-{step}"), map_tasks),
        Stage::new(format!("{name}-reduce-{step}"), reduce_tasks),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_sim::MachineConfig;

    /// Reference union-find for checking the propagation result.
    fn components_by_union_find(und: &SynthGraph) -> Vec<u32> {
        let mut parent: Vec<u32> = (0..und.n as u32).collect();
        fn find(parent: &mut [u32], v: u32) -> u32 {
            let mut v = v;
            while parent[v as usize] != v {
                parent[v as usize] = parent[parent[v as usize] as usize];
                v = parent[v as usize];
            }
            v
        }
        for v in 0..und.n {
            for &t in und.neighbors(v) {
                let a = find(&mut parent, v as u32);
                let b = find(&mut parent, t);
                if a != b {
                    parent[a.max(b) as usize] = a.min(b);
                }
            }
        }
        // Canonical min-vertex label per component.
        let mut label = vec![0u32; und.n];
        for (v, l) in label.iter_mut().enumerate() {
            *l = find(&mut parent, v as u32);
        }
        label
    }

    #[test]
    fn undirected_doubles_edges_symmetrically() {
        let g = Kronecker::for_input(GraphInput::Google, 8, 4).generate(1);
        let u = undirected(&g);
        assert_eq!(u.edge_count(), 2 * g.edge_count());
        // Symmetry: if t in N(v) then v in N(t).
        for v in 0..u.n {
            for &t in u.neighbors(v) {
                assert!(u.neighbors(t as usize).contains(&(v as u32)), "{v} <-> {t}");
            }
        }
    }

    #[test]
    fn propagation_matches_union_find() {
        let g = Kronecker::for_input(GraphInput::Google, 9, 5).generate(2);
        let und = undirected(&g);
        let run = propagate(&und, 4, 64);
        let expect = components_by_union_find(&und);
        assert_eq!(run.labels, expect, "min-label propagation finds the components");
    }

    #[test]
    fn activity_decays_over_supersteps() {
        let g = Kronecker::for_input(GraphInput::Google, 11, 6).generate(3);
        let und = undirected(&g);
        let run = propagate(&und, 4, 64);
        assert!(run.supersteps.len() >= 3, "{}", run.supersteps.len());
        let first: usize = run.supersteps[0].edges_from.iter().sum();
        let last: usize = run.supersteps.last().unwrap().edges_from.iter().sum();
        assert!(last < first / 2, "activity must shrink: {first} → {last}");
    }

    #[test]
    fn spark_job_has_superstep_stage_pairs() {
        let cfg = WorkloadConfig::tiny(31);
        let mut m = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let job = spark(&cfg, &mut m, &mut reg);
        // load + init-degrees + 3 per superstep (gather/apply/ship) + write.
        #[allow(clippy::int_plus_one)] // load + init-degrees + 3 per superstep + write
        {
            assert!(job.stages.len() >= 1 + 1 + 3 + 1, "{}", job.stages.len());
        }
        assert_eq!((job.stages.len() - 3) % 3, 0, "stage triples: {}", job.stages.len());
        assert!(job.total_instrs() > 100_000);
    }

    #[test]
    fn hadoop_job_has_mr_per_superstep() {
        let cfg = WorkloadConfig::tiny(31);
        let mut m = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let job = hadoop(&cfg, &mut m, &mut reg);
        assert_eq!(job.stages.len() % 2, 0);
        let sort_id = reg.lookup("org.apache.hadoop.util.QuickSort.sort").unwrap();
        assert!(job
            .stages
            .iter()
            .flat_map(|s| &s.tasks)
            .flat_map(|t| &t.items)
            .any(|i| i.path.contains(&sort_id)));
    }
}
