//! NaiveBayes — train a multinomial classifier on a labelled corpus, then
//! classify held-out documents (BigDataBench's machine-learning workload).
//!
//! Training is a WordCount-shaped aggregation over `(class, word)` pairs;
//! classification is a scoring scan whose per-token model lookups are random
//! probes over the whole model table — a second, distinctly
//! memory-behaviour-different phase. On Hadoop the two steps are two
//! chained MapReduce jobs (four stages); on Spark, three stages of one job.

use std::collections::HashMap;

use simprof_engine::hadoop::HadoopMethods;
use simprof_engine::spark::SparkMethods;
use simprof_engine::{ops, Job, MethodRegistry, OpClass, Stage, Task, WorkItem};
use simprof_sim::{AccessPattern, Machine, Region};

use super::{
    fnv1a, hdfs_write_item, mark_shuffle_fetch, overlap_stall, partition_ranges, route, spill_item,
};
use crate::config::WorkloadConfig;
use crate::synth::text::{LabeledCorpus, TextSynth};

/// Number of document classes.
pub const CLASSES: usize = 4;
const ENTRY_BYTES: u64 = 56;
const BATCH: usize = 4_096;
/// Instructions per token scored during classification.
const SCORE_PER_TOKEN: u64 = CLASSES as u64 * 18;

fn corpus(cfg: &WorkloadConfig) -> LabeledCorpus {
    let synth = TextSynth::new(5_000, 1.0, 9, cfg.sub_seed(0xBA1E5));
    LabeledCorpus::generate(&synth, CLASSES, cfg.text_bytes / 2, cfg.sub_seed(5))
}

/// The trained model: `(class, word-hash) → count` plus per-class totals.
#[derive(Debug, Clone, Default)]
pub struct BayesModel {
    counts: HashMap<(usize, u64), i64>,
    class_tokens: [i64; CLASSES],
    class_docs: [i64; CLASSES],
}

impl BayesModel {
    fn observe(&mut self, class: usize, word: &str) {
        *self.counts.entry((class, fnv1a(word))).or_insert(0) += 1;
        self.class_tokens[class] += 1;
    }

    /// Classifies a document by maximum log-likelihood with Laplace
    /// smoothing.
    pub fn classify(&self, doc: &str) -> usize {
        let total_docs: i64 = self.class_docs.iter().sum::<i64>().max(1);
        let vocab = self.counts.len() as f64 + 1.0;
        let mut best = (0usize, f64::NEG_INFINITY);
        for c in 0..CLASSES {
            let prior = (self.class_docs[c].max(1) as f64 / total_docs as f64).ln();
            let denom = self.class_tokens[c] as f64 + vocab;
            let mut score = prior;
            for w in doc.split_whitespace() {
                let count = self.counts.get(&(c, fnv1a(w))).copied().unwrap_or(0);
                score += ((count as f64 + 1.0) / denom).ln();
            }
            if score > best.1 {
                best = (c, score);
            }
        }
        best.0
    }

    /// Model table size (distinct `(class, word)` entries).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Trains the real model (shared by both frameworks' builders).
fn train(docs: &[(usize, String)]) -> BayesModel {
    let mut model = BayesModel::default();
    for &(class, ref line) in docs {
        model.class_docs[class] += 1;
        for w in line.split_whitespace() {
            model.observe(class, w);
        }
    }
    model
}

/// Classification items for one partition of documents: a streaming scan
/// plus random model probes, and the real predicted labels.
#[allow(clippy::too_many_arguments)]
fn classify_items(
    docs: &[(usize, String)],
    model: &BayesModel,
    model_region: Region,
    scan_path: Vec<simprof_engine::MethodId>,
    probe_path: Vec<simprof_engine::MethodId>,
    in_region: Region,
    read_stall: u64,
    seed: u64,
) -> (Vec<usize>, Vec<WorkItem>) {
    let tokens: u64 = docs.iter().map(|(_, l)| l.split_whitespace().count() as u64).sum();
    let bytes: u64 = docs.iter().map(|(_, l)| l.len() as u64 + 1).sum();
    let predictions: Vec<usize> = docs.iter().map(|(_, l)| model.classify(l)).collect();
    let items = vec![
        WorkItem::compute(
            scan_path,
            bytes * 2,
            ops::costs::SEQ_APKI,
            AccessPattern::Sequential,
            in_region,
            seed,
        )
        .with_io_stall(read_stall),
        WorkItem::compute(
            probe_path,
            tokens * SCORE_PER_TOKEN,
            ops::costs::HASH_APKI,
            AccessPattern::Zipf,
            model_region,
            seed ^ 1,
        ),
    ];
    (predictions, items)
}

/// Builds the Spark NaiveBayes job: train map, train reduce, classify.
pub fn spark(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let sm = SparkMethods::intern(reg);
    let emit_fn = reg.intern("org.bigdatabench.bayes.LabeledTokenFn.apply", OpClass::Map);
    let agg_fn = reg.intern("org.bigdatabench.bayes.CountAggFn.apply", OpClass::Reduce);
    let train_fn = reg.intern("org.bigdatabench.bayes.NaiveBayes.train", OpClass::Reduce);
    let predict_fn = reg.intern("org.bigdatabench.bayes.NaiveBayesModel.predict", OpClass::Map);

    let corpus = corpus(cfg);
    let model = train(&corpus.docs);
    let model_region = machine.alloc(model.len() as u64 * ENTRY_BYTES);
    let ranges = partition_ranges(corpus.docs.len(), cfg.partitions);

    // Stage 0: tokenize + map-side combine of (class:word, 1).
    let mut reducer_inputs: Vec<Vec<(String, i64)>> = vec![Vec::new(); cfg.reducers];
    let mut map_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let docs = &corpus.docs[lo..hi];
        let seed = cfg.sub_seed(1100 + p as u64);
        let bytes: u64 = docs.iter().map(|(_, l)| l.len() as u64 + 1).sum();
        let mut items = Vec::new();
        let in_region = machine.alloc(bytes.max(64));
        let lines: Vec<String> = docs.iter().map(|(c, l)| format!("{c} {l}")).collect();
        let (tokens, tok_item) =
            ops::tokenize(&lines, vec![sm.map_partitions_with_index, emit_fn], in_region, seed);
        items.push(tok_item.with_io_stall(cfg.hdfs.read_stall(bytes)));
        let pairs = docs.iter().flat_map(|&(class, ref line)| {
            line.split_whitespace().map(move |w| (format!("{class}:{w}"), 1i64))
        });
        let (combined, combine_items) = ops::hash_combine(
            pairs,
            |a, b| *a += b,
            ENTRY_BYTES,
            BATCH,
            vec![sm.combine_values_by_key, sm.append_only_map_change_value],
            AccessPattern::Zipf,
            machine,
            seed,
        );
        items.extend(combine_items);
        let _ = tokens;
        let out = combined.len() as u64 * 18;
        items.push(spill_item(
            &cfg.hdfs,
            machine,
            out,
            vec![sm.shuffle_writer_write, sm.serialize_object],
            seed,
        ));
        for (k, v) in combined {
            reducer_inputs[route(&k, cfg.reducers)].push((k, v));
        }
        map_tasks.push(Task::new(sm.shuffle_map_base(), items));
    }

    // Stage 1: aggregate counts and finalize the model.
    let mut agg_tasks = Vec::with_capacity(cfg.reducers);
    for (r, pairs) in reducer_inputs.into_iter().enumerate() {
        let seed = cfg.sub_seed(1200 + r as u64);
        let mut items = Vec::new();
        let fetch_bytes = pairs.len() as u64 * 18;
        let fetch_stall = cfg.shuffle_fetch_stall(fetch_bytes);
        let (final_counts, combine_items) = ops::hash_combine(
            pairs,
            |a, b| *a += b,
            ENTRY_BYTES,
            BATCH,
            vec![sm.combine_combiners_by_key, agg_fn],
            AccessPattern::Zipf,
            machine,
            seed,
        );
        let mut combine_items = combine_items;
        overlap_stall(&mut combine_items, fetch_stall);
        mark_shuffle_fetch(&mut combine_items, fetch_bytes);
        items.extend(combine_items);
        // Likelihood computation over this reducer's share of the model.
        items.push(WorkItem::compute(
            vec![train_fn],
            final_counts.len() as u64 * 40,
            ops::costs::SEQ_APKI,
            AccessPattern::Sequential,
            model_region,
            seed,
        ));
        let out = final_counts.len() as u64 * 20;
        items.push(hdfs_write_item(&cfg.hdfs, machine, out, vec![sm.dfs_write], seed));
        agg_tasks.push(Task::new(sm.result_base(), items));
    }

    // Stage 2: classify every document against the trained model.
    let mut classify_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let docs = &corpus.docs[lo..hi];
        let seed = cfg.sub_seed(1300 + p as u64);
        let bytes: u64 = docs.iter().map(|(_, l)| l.len() as u64 + 1).sum();
        let mut items = Vec::new();
        let in_region = machine.alloc(bytes.max(64));
        let read_stall = cfg.hdfs.read_stall(bytes);
        let (_preds, score_items) = classify_items(
            docs,
            &model,
            model_region,
            vec![sm.map_partitions_with_index, emit_fn],
            vec![sm.map_partitions_with_index, predict_fn],
            in_region,
            read_stall,
            seed,
        );
        items.extend(score_items);
        items.push(hdfs_write_item(
            &cfg.hdfs,
            machine,
            (hi - lo) as u64 * 4,
            vec![sm.dfs_write],
            seed,
        ));
        classify_tasks.push(Task::new(sm.result_base(), items));
    }

    Job::new(vec![
        Stage::new("bayes-sp-stage0", map_tasks),
        Stage::new("bayes-sp-stage1", agg_tasks),
        Stage::new("bayes-sp-stage2", classify_tasks),
    ])
}

/// Builds the Hadoop NaiveBayes job: two chained MR jobs (train, classify).
pub fn hadoop(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let hm = HadoopMethods::intern(reg);
    let mapper = reg.intern("org.bigdatabench.bayes.LabeledTokenMapper.map", OpClass::Map);
    let reducer_m = reg.intern("org.bigdatabench.bayes.CountSumReducer.reduce", OpClass::Reduce);
    let score_mapper = reg.intern("org.bigdatabench.bayes.ScoreMapper.map", OpClass::Map);

    let corpus = corpus(cfg);
    let model = train(&corpus.docs);
    let model_region = machine.alloc(model.len() as u64 * ENTRY_BYTES);
    let ranges = partition_ranges(corpus.docs.len(), cfg.partitions);

    // --- Job 1: train ---
    let mut runs_per_reducer: Vec<Vec<Vec<u64>>> = vec![Vec::new(); cfg.reducers];
    let mut count_per_reducer: Vec<usize> = vec![0; cfg.reducers];
    let mut map_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let docs = &corpus.docs[lo..hi];
        let seed = cfg.sub_seed(1400 + p as u64);
        let bytes: u64 = docs.iter().map(|(_, l)| l.len() as u64 + 1).sum();
        let mut items = Vec::new();
        let in_region = machine.alloc(bytes.max(64));
        let lines: Vec<String> = docs.iter().map(|(c, l)| format!("{c} {l}")).collect();
        let (_tokens, tok_item) =
            ops::tokenize(&lines, vec![mapper, hm.map_output_buffer_collect], in_region, seed);
        items.push(tok_item.with_io_stall(cfg.hdfs.read_stall(bytes)));
        // Spill sort over emitted (class:word) key hashes, with the real
        // bounded-buffer multi-spill pipeline.
        let key_hashes: Vec<u64> = docs
            .iter()
            .flat_map(|&(class, ref line)| {
                line.split_whitespace().map(move |w| fnv1a(w) ^ (class as u64) << 56)
            })
            .collect();
        items.extend(super::map_side_sort_spill(
            key_hashes,
            &cfg.hdfs,
            machine,
            vec![hm.sort_and_spill, hm.quick_sort],
            vec![hm.sort_and_spill, hm.ifile_writer_append],
            vec![hm.merger_merge],
            seed,
        ));
        // Combine.
        let pairs = docs.iter().flat_map(|&(class, ref line)| {
            line.split_whitespace().map(move |w| (format!("{class}:{w}"), 1i64))
        });
        let (combined, combine_items) = ops::hash_combine(
            pairs,
            |a, b| *a += b,
            ENTRY_BYTES,
            BATCH,
            vec![hm.combiner_combine, reducer_m],
            AccessPattern::Zipf,
            machine,
            seed,
        );
        items.extend(combine_items);
        let out = combined.len() as u64 * 18;
        items.push(spill_item(
            &cfg.hdfs,
            machine,
            out,
            vec![hm.codec_compress, hm.ifile_writer_append],
            seed,
        ));
        let mut per_r: Vec<Vec<u64>> = vec![Vec::new(); cfg.reducers];
        for (k, _) in combined {
            let r = route(&k, cfg.reducers);
            per_r[r].push(fnv1a(&k));
            count_per_reducer[r] += 1;
        }
        for (r, mut run) in per_r.into_iter().enumerate() {
            run.sort_unstable();
            runs_per_reducer[r].push(run);
        }
        map_tasks.push(Task::new(hm.map_base(), items));
    }

    let mut reduce_tasks = Vec::with_capacity(cfg.reducers);
    for (r, runs) in runs_per_reducer.into_iter().enumerate() {
        let seed = cfg.sub_seed(1500 + r as u64);
        let mut items = Vec::new();
        let fetch_bytes = count_per_reducer[r] as u64 * 18;
        let merge_region = machine.alloc(fetch_bytes.max(64));
        let (_m, mut merge_items) =
            ops::kway_merge(&runs, 16, merge_region, vec![hm.merger_merge], seed);
        overlap_stall(&mut merge_items, cfg.shuffle_fetch_stall(fetch_bytes));
        mark_shuffle_fetch(&mut merge_items, fetch_bytes);
        items.extend(merge_items);
        items.push(WorkItem::compute(
            vec![reducer_m],
            count_per_reducer[r] as u64 * 30,
            ops::costs::SEQ_APKI,
            AccessPattern::Sequential,
            merge_region,
            seed,
        ));
        items.push(hdfs_write_item(
            &cfg.hdfs,
            machine,
            count_per_reducer[r] as u64 * 20,
            vec![hm.dfs_write],
            seed,
        ));
        reduce_tasks.push(Task::new(hm.reduce_base(), items));
    }

    // --- Job 2: classify ---
    let mut classify_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let docs = &corpus.docs[lo..hi];
        let seed = cfg.sub_seed(1600 + p as u64);
        let bytes: u64 = docs.iter().map(|(_, l)| l.len() as u64 + 1).sum();
        let mut items = Vec::new();
        let in_region = machine.alloc(bytes.max(64));
        let read_stall = cfg.hdfs.read_stall(bytes);
        let (_preds, score_items) = classify_items(
            docs,
            &model,
            model_region,
            vec![score_mapper, hm.map_output_buffer_collect],
            vec![score_mapper],
            in_region,
            read_stall,
            seed,
        );
        items.extend(score_items);
        items.push(spill_item(
            &cfg.hdfs,
            machine,
            (hi - lo) as u64 * 4,
            vec![hm.ifile_writer_append],
            seed,
        ));
        classify_tasks.push(Task::new(hm.map_base(), items));
    }

    // Tiny collect wave for the classification counts.
    let seed = cfg.sub_seed(1700);
    let collect = vec![Task::new(
        hm.reduce_base(),
        vec![
            {
                let bytes = corpus.docs.len() as u64 * 4;
                let region = machine.alloc(bytes.max(64));
                WorkItem::io(
                    vec![hm.fetcher_copy],
                    bytes / 6 + 1,
                    cfg.shuffle_fetch_stall(bytes),
                    region,
                    seed,
                )
                .with_shuffle_bytes(bytes)
            },
            hdfs_write_item(&cfg.hdfs, machine, CLASSES as u64 * 16, vec![hm.dfs_write], seed),
        ],
    )];

    Job::new(vec![
        Stage::new("bayes-hp-train-map", map_tasks),
        Stage::new("bayes-hp-train-reduce", reduce_tasks),
        Stage::new("bayes-hp-classify-map", classify_tasks),
        Stage::new("bayes-hp-classify-reduce", collect),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_sim::MachineConfig;

    #[test]
    fn model_learns_classes() {
        let cfg = WorkloadConfig::tiny(23);
        let corpus = corpus(&cfg);
        let model = train(&corpus.docs);
        assert!(!model.is_empty());
        // Training-set accuracy should beat chance (25 %) comfortably —
        // the class-marker vocabulary makes classes learnable.
        let correct = corpus.docs.iter().filter(|&&(c, ref l)| model.classify(l) == c).count();
        let acc = correct as f64 / corpus.docs.len() as f64;
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn spark_has_three_stages() {
        let cfg = WorkloadConfig::tiny(23);
        let mut m = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let job = spark(&cfg, &mut m, &mut reg);
        assert_eq!(job.stages.len(), 3);
    }

    #[test]
    fn hadoop_has_two_chained_jobs() {
        let cfg = WorkloadConfig::tiny(23);
        let mut m = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let job = hadoop(&cfg, &mut m, &mut reg);
        assert_eq!(job.stages.len(), 4);
        // Classification probes the model randomly.
        let scorer = reg.lookup("org.bigdatabench.bayes.ScoreMapper.map").unwrap();
        let probe = job.stages[2]
            .tasks
            .iter()
            .flat_map(|t| &t.items)
            .find(|i| i.path == vec![scorer])
            .expect("score item");
        assert_eq!(probe.pattern, AccessPattern::Zipf);
    }
}
