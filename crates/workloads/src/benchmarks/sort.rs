//! Sort — order the corpus by key (TeraSort-style).
//!
//! **Spark**: a range-partitioning map stage (sample keys, route each record
//! to the reducer owning its key range) followed by a result stage where
//! each reducer *actually quicksorts* its key range
//! (`ExternalSorter`/`TimSort`) and writes ordered output. The per-partition
//! quicksort makes sort_sp's second stage the classic non-homogeneous sort
//! phase.
//!
//! **Hadoop**: BigDataBench's sort is an identity-map job that leans on the
//! framework's spill/merge machinery: map wave = read + identity map +
//! spill, reduce wave = fetch + streaming k-way merge + write. No quicksort
//! phase appears — matching the paper's Fig. 10, where sort_hp (like
//! grep_hp) shows no sort-type phase and is dominated by IO.

use simprof_engine::hadoop::HadoopMethods;
use simprof_engine::spark::SparkMethods;
use simprof_engine::{ops, Job, MethodRegistry, OpClass, Stage, Task, WorkItem};
use simprof_sim::{AccessPattern, Machine};

use super::{
    fnv1a, hdfs_write_item, mark_shuffle_fetch, overlap_stall, partition_ranges, spill_item,
};
use crate::config::WorkloadConfig;
use crate::synth::text::TextSynth;

fn corpus(cfg: &WorkloadConfig) -> Vec<String> {
    TextSynth::new(6_000, 1.05, 8, cfg.sub_seed(0x5047)).lines(cfg.text_bytes * 3, cfg.sub_seed(4))
}

/// Key of a record: hash of its first word (uniform-ish over u64, so range
/// partitioning splits evenly).
fn key_of(line: &str) -> u64 {
    fnv1a(line.split_whitespace().next().unwrap_or(""))
}

/// Range boundaries from a deterministic sample of keys.
fn boundaries(keys: &[u64], reducers: usize) -> Vec<u64> {
    let mut sample: Vec<u64> =
        keys.iter().step_by(16.max(keys.len() / 1024 + 1)).copied().collect();
    sample.sort_unstable();
    (1..reducers)
        .map(|r| sample.get(r * sample.len() / reducers).copied().unwrap_or(u64::MAX))
        .collect()
}

fn range_of(key: u64, bounds: &[u64]) -> usize {
    bounds.partition_point(|&b| b <= key)
}

/// Builds the Spark Sort job.
pub fn spark(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let sm = SparkMethods::intern(reg);
    let key_fn = reg.intern("org.bigdatabench.sort.KeyExtractFn.apply", OpClass::Map);
    let lines = corpus(cfg);
    let all_keys: Vec<u64> = lines.iter().map(|l| key_of(l)).collect();
    let bounds = boundaries(&all_keys, cfg.reducers);
    let ranges = partition_ranges(lines.len(), cfg.partitions);

    let mut reducer_keys: Vec<Vec<u64>> = vec![Vec::new(); cfg.reducers];
    let mut reducer_bytes: Vec<u64> = vec![0; cfg.reducers];
    let mut map_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let slice = &lines[lo..hi];
        let seed = cfg.sub_seed(700 + p as u64);
        let bytes: u64 = slice.iter().map(|l| l.len() as u64 + 1).sum();
        let mut items = Vec::new();
        let in_region = machine.alloc(bytes.max(64));
        // Key extraction + routing: a streaming map pass with the lazy HDFS
        // read overlapped.
        items.push(
            WorkItem::compute(
                vec![sm.map_partitions_with_index, key_fn],
                bytes * 2 + (hi - lo) as u64 * 30,
                ops::costs::SEQ_APKI,
                AccessPattern::Sequential,
                in_region,
                seed,
            )
            .with_io_stall(cfg.hdfs.read_stall(bytes)),
        );
        items.push(spill_item(
            &cfg.hdfs,
            machine,
            bytes,
            vec![sm.shuffle_writer_write, sm.serialize_object],
            seed,
        ));
        for (i, line) in slice.iter().enumerate() {
            let k = all_keys[lo + i];
            let r = range_of(k, &bounds);
            reducer_keys[r].push(k);
            reducer_bytes[r] += line.len() as u64 + 1;
        }
        map_tasks.push(Task::new(sm.shuffle_map_base(), items));
    }

    let mut reduce_tasks = Vec::with_capacity(cfg.reducers);
    for (r, mut keys) in reducer_keys.into_iter().enumerate() {
        let seed = cfg.sub_seed(800 + r as u64);
        let mut items = Vec::new();
        // The real sort of this reducer's key range, with the shuffle fetch
        // overlapped into it.
        let sort_region = machine.alloc((keys.len() as u64 * 16).max(64));
        let mut sort_items = ops::quicksort_trace(
            &mut keys,
            16,
            sort_region,
            vec![sm.external_sorter_insert_all, sm.timsort_sort],
            seed,
        );
        overlap_stall(&mut sort_items, cfg.shuffle_fetch_stall(reducer_bytes[r]));
        mark_shuffle_fetch(&mut sort_items, reducer_bytes[r]);
        items.extend(sort_items);
        items.push(hdfs_write_item(&cfg.hdfs, machine, reducer_bytes[r], vec![sm.dfs_write], seed));
        reduce_tasks.push(Task::new(sm.result_base(), items));
    }

    Job::new(vec![
        Stage::new("sort-sp-stage0", map_tasks),
        Stage::new("sort-sp-stage1", reduce_tasks),
    ])
}

/// Builds the Hadoop Sort job (identity map, framework merge).
pub fn hadoop(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let hm = HadoopMethods::intern(reg);
    let mapper = reg.intern("org.bigdatabench.sort.IdentityMapper.map", OpClass::Map);
    let lines = corpus(cfg);
    let all_keys: Vec<u64> = lines.iter().map(|l| key_of(l)).collect();
    let bounds = boundaries(&all_keys, cfg.reducers);
    let ranges = partition_ranges(lines.len(), cfg.partitions);

    let mut runs_per_reducer: Vec<Vec<Vec<u64>>> = vec![Vec::new(); cfg.reducers];
    let mut reducer_bytes: Vec<u64> = vec![0; cfg.reducers];
    let mut map_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let slice = &lines[lo..hi];
        let seed = cfg.sub_seed(900 + p as u64);
        let bytes: u64 = slice.iter().map(|l| l.len() as u64 + 1).sum();
        let mut items = Vec::new();
        let in_region = machine.alloc(bytes.max(64));
        // Identity map: cheap record passthrough, reads overlapped.
        items.push(
            WorkItem::compute(
                vec![mapper, hm.map_output_buffer_collect],
                bytes + (hi - lo) as u64 * 20,
                ops::costs::SEQ_APKI,
                AccessPattern::Sequential,
                in_region,
                seed,
            )
            .with_io_stall(cfg.hdfs.read_stall(bytes)),
        );
        // Spill everything (sort_hp moves its whole input through disk).
        items.push(spill_item(
            &cfg.hdfs,
            machine,
            bytes,
            vec![hm.codec_compress, hm.ifile_writer_append],
            seed,
        ));
        let mut per_r: Vec<Vec<u64>> = vec![Vec::new(); cfg.reducers];
        for (i, line) in slice.iter().enumerate() {
            let k = all_keys[lo + i];
            let r = range_of(k, &bounds);
            per_r[r].push(k);
            reducer_bytes[r] += line.len() as u64 + 1;
        }
        for (r, mut run) in per_r.into_iter().enumerate() {
            run.sort_unstable();
            runs_per_reducer[r].push(run);
        }
        map_tasks.push(Task::new(hm.map_base(), items));
    }

    let mut reduce_tasks = Vec::with_capacity(cfg.reducers);
    for (r, runs) in runs_per_reducer.into_iter().enumerate() {
        let seed = cfg.sub_seed(1000 + r as u64);
        let mut items = Vec::new();
        let merge_region = machine.alloc(reducer_bytes[r].max(64));
        let (_merged, mut merge_items) =
            ops::kway_merge(&runs, 16, merge_region, vec![hm.merger_merge], seed);
        overlap_stall(&mut merge_items, cfg.shuffle_fetch_stall(reducer_bytes[r]));
        mark_shuffle_fetch(&mut merge_items, reducer_bytes[r]);
        items.extend(merge_items);
        items.push(hdfs_write_item(&cfg.hdfs, machine, reducer_bytes[r], vec![hm.dfs_write], seed));
        reduce_tasks.push(Task::new(hm.reduce_base(), items));
    }

    Job::new(vec![Stage::new("sort-hp-map", map_tasks), Stage::new("sort-hp-reduce", reduce_tasks)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_sim::MachineConfig;

    fn setup() -> (WorkloadConfig, Machine, MethodRegistry) {
        (WorkloadConfig::tiny(17), Machine::new(MachineConfig::scaled(2)), MethodRegistry::new())
    }

    #[test]
    fn boundaries_split_key_space() {
        let keys: Vec<u64> =
            (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let b = boundaries(&keys, 4);
        assert_eq!(b.len(), 3);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        let mut counts = [0usize; 4];
        for &k in &keys {
            counts[range_of(k, &b)] += 1;
        }
        for &c in &counts {
            assert!(c > 1_000, "ranges roughly balanced: {counts:?}");
        }
    }

    #[test]
    fn range_partitioning_preserves_all_records() {
        let cfg = WorkloadConfig::tiny(43);
        let lines = corpus(&cfg);
        let keys: Vec<u64> = lines.iter().map(|l| key_of(l)).collect();
        let bounds = boundaries(&keys, cfg.reducers);
        let mut counts = vec![0usize; cfg.reducers];
        for &k in &keys {
            counts[range_of(k, &bounds)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), lines.len());
        // Keys routed to reducer r are all below reducer r+1's keys.
        let mut maxima = vec![0u64; cfg.reducers];
        let mut minima = vec![u64::MAX; cfg.reducers];
        for &k in &keys {
            let r = range_of(k, &bounds);
            maxima[r] = maxima[r].max(k);
            minima[r] = minima[r].min(k);
        }
        for r in 1..cfg.reducers {
            if minima[r] != u64::MAX && maxima[r - 1] != 0 {
                assert!(maxima[r - 1] <= minima[r], "ranges must be ordered");
            }
        }
    }

    #[test]
    fn spark_sort_has_quicksort_in_stage1() {
        let (cfg, mut m, mut reg) = setup();
        let job = spark(&cfg, &mut m, &mut reg);
        let sort_id = reg.lookup("org.apache.spark.util.collection.TimSort.sort").unwrap();
        assert!(job.stages[1]
            .tasks
            .iter()
            .flat_map(|t| &t.items)
            .any(|i| i.path.contains(&sort_id)));
        assert!(!job.stages[0]
            .tasks
            .iter()
            .flat_map(|t| &t.items)
            .any(|i| i.path.contains(&sort_id)));
    }

    #[test]
    fn hadoop_sort_has_no_quicksort() {
        let (cfg, mut m, mut reg) = setup();
        let job = hadoop(&cfg, &mut m, &mut reg);
        let sort_id = reg.lookup("org.apache.hadoop.util.QuickSort.sort").unwrap();
        assert!(!job
            .stages
            .iter()
            .flat_map(|s| &s.tasks)
            .flat_map(|t| &t.items)
            .any(|i| i.path.contains(&sort_id)));
    }

    #[test]
    fn hadoop_sort_is_io_heavy() {
        let (cfg, mut m, mut reg) = setup();
        let job = hadoop(&cfg, &mut m, &mut reg);
        let stalls: u64 = job
            .stages
            .iter()
            .flat_map(|s| &s.tasks)
            .flat_map(|t| &t.items)
            .map(|i| i.io_stall_cycles)
            .sum();
        // IO stall cycles are a large fraction of total work — disk-bound
        // relative to the identity-map compute.
        assert!(stalls > job.total_instrs() / 6, "{stalls} vs {}", job.total_instrs());
    }
}
