//! PageRank — damped power iteration on a synthesized Kronecker graph.
//!
//! The real iteration runs at build time (damping 0.85, dangling mass
//! redistributed uniformly); every vertex is active every iteration, so —
//! unlike Connected Components — per-superstep work is stable and the
//! phase structure repeats. rank_sp still has many phases (Fig. 9) because
//! the GraphX stage pair contributes several distinct methods.

use simprof_engine::hadoop::HadoopMethods;
use simprof_engine::spark::SparkMethods;
use simprof_engine::{Job, MethodRegistry, OpClass, Stage, Task};
use simprof_sim::Machine;

use super::cc::{
    alloc_graph_regions, graphx_superstep_stages, hadoop_superstep_stages, init_degrees_stage,
    SuperstepStats,
};
use super::{hdfs_write_item, partition_ranges};
use crate::config::WorkloadConfig;
use crate::synth::kronecker::{GraphInput, Kronecker, SynthGraph};

/// Damping factor.
pub const DAMPING: f64 = 0.85;

/// The real PageRank computation plus per-iteration activity stats.
#[derive(Debug, Clone)]
pub struct PrRun {
    /// Final rank vector (sums to ~1).
    pub ranks: Vec<f64>,
    /// One stats record per iteration (identical shapes, real counts).
    pub iterations: Vec<SuperstepStats>,
}

/// Runs `iters` power iterations on the directed graph.
pub fn pagerank(g: &SynthGraph, partitions: usize, iters: usize, record_targets: bool) -> PrRun {
    let n = g.n;
    let ranges = partition_ranges(n, partitions);
    let part_of = |v: usize| -> usize {
        ranges.iter().position(|&(lo, hi)| v >= lo && v < hi).expect("vertex in some partition")
    };
    let mut ranks = vec![1.0 / n as f64; n];
    let mut iterations = Vec::with_capacity(iters);

    for _ in 0..iters.max(1) {
        let mut next = vec![(1.0 - DAMPING) / n as f64; n];
        let mut dangling = 0.0;
        let mut edges_from = vec![0usize; partitions];
        let mut msgs_to = vec![0usize; partitions];
        let mut targets_from: Vec<Vec<u64>> = vec![Vec::new(); partitions];
        for (v, &rank) in ranks.iter().enumerate() {
            let deg = g.degree(v);
            if deg == 0 {
                dangling += rank;
                continue;
            }
            let p = part_of(v);
            let share = DAMPING * rank / deg as f64;
            for &t in g.neighbors(v) {
                edges_from[p] += 1;
                msgs_to[part_of(t as usize)] += 1;
                if record_targets {
                    targets_from[p].push(t as u64);
                }
                next[t as usize] += share;
            }
        }
        let dangling_share = DAMPING * dangling / n as f64;
        for r in &mut next {
            *r += dangling_share;
        }
        ranks = next;
        iterations.push(SuperstepStats { edges_from, msgs_to, targets_from });
    }
    PrRun { ranks, iterations }
}

/// Builds the Spark PageRank job.
pub fn spark(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let sm = SparkMethods::intern(reg);
    let g = Kronecker::for_input(GraphInput::Google, cfg.graph_scale, cfg.graph_degree)
        .generate(cfg.sub_seed(7));
    spark_on_graph(cfg, machine, reg, &sm, &g)
}

/// Spark PageRank on an explicit graph (input-sensitivity entry point).
pub fn spark_on_graph(
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    _reg: &mut MethodRegistry,
    sm: &SparkMethods,
    g: &SynthGraph,
) -> Job {
    let run = pagerank(g, cfg.partitions, cfg.max_iterations, false);
    let fake_und = SynthGraph { n: g.n, offsets: g.offsets.clone(), targets: g.targets.clone() };
    let regions = alloc_graph_regions(machine, &fake_und);

    let mut stages = Vec::new();
    // Load stage: reuse the CC loader shape via an inline build.
    let parts = partition_ranges(g.targets.len(), cfg.partitions);
    let load_tasks = parts
        .iter()
        .enumerate()
        .map(|(p, &(lo, hi))| {
            let seed = cfg.sub_seed(6000 + p as u64);
            let bytes = (hi - lo) as u64 * 8;
            let build = simprof_engine::WorkItem::compute(
                vec![sm.hadoop_rdd_compute, sm.map_edge_partitions],
                (hi - lo) as u64 * 6,
                simprof_engine::ops::costs::SEQ_APKI,
                simprof_sim::AccessPattern::Sequential,
                regions.edges,
                seed,
            )
            .with_io_stall(cfg.hdfs.read_stall(bytes));
            Task::new(sm.shuffle_map_base(), vec![build])
        })
        .collect();
    stages.push(Stage::new("rank-sp-load", load_tasks));
    if let Some(first) = run.iterations.first() {
        stages.push(init_degrees_stage(cfg, sm, &regions, &first.edges_from, "rank-sp"));
    }

    for (step, ss) in run.iterations.iter().enumerate() {
        stages.extend(graphx_superstep_stages(
            cfg,
            machine,
            sm,
            &regions,
            &ss.edges_from,
            &ss.msgs_to,
            step,
            "rank-sp",
        ));
    }
    let seed = cfg.sub_seed(6900);
    let write = Task::new(
        sm.result_base(),
        vec![hdfs_write_item(&cfg.hdfs, machine, g.n as u64 * 12, vec![sm.dfs_write], seed)],
    );
    stages.push(Stage::new("rank-sp-write", vec![write]));
    Job::new(stages)
}

/// Builds the Hadoop PageRank job: one MapReduce per iteration (capped, as
/// iterative MR jobs are expensive).
pub fn hadoop(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let g = Kronecker::for_input(GraphInput::Google, cfg.graph_scale, cfg.graph_degree)
        .generate(cfg.sub_seed(7));
    hadoop_on_graph(cfg, machine, reg, &g)
}

/// Hadoop PageRank on an explicit graph (input-sensitivity entry point).
pub fn hadoop_on_graph(
    cfg: &WorkloadConfig,
    machine: &mut Machine,
    reg: &mut MethodRegistry,
    g: &SynthGraph,
) -> Job {
    let hm = HadoopMethods::intern(reg);
    let mapper = reg.intern("org.bigdatabench.rank.RankShareMapper.map", OpClass::Map);
    let reducer_m = reg.intern("org.bigdatabench.rank.RankSumReducer.reduce", OpClass::Reduce);
    let hp_iters = (cfg.max_iterations / 4).max(2);
    let run = pagerank(g, cfg.partitions, hp_iters, true);
    let fake_und = SynthGraph { n: g.n, offsets: g.offsets.clone(), targets: g.targets.clone() };
    let regions = alloc_graph_regions(machine, &fake_und);

    let mut stages = Vec::new();
    for (step, ss) in run.iterations.iter().enumerate() {
        stages.extend(hadoop_superstep_stages(
            cfg, machine, &hm, mapper, reducer_m, &regions, ss, step, "rank-hp",
        ));
    }
    Job::new(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_sim::MachineConfig;

    #[test]
    fn ranks_sum_to_one() {
        let g = Kronecker::for_input(GraphInput::Google, 10, 6).generate(1);
        let run = pagerank(&g, 4, 10, false);
        let sum: f64 = run.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        assert!(run.ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn high_in_degree_vertices_rank_higher() {
        let g = Kronecker::for_input(GraphInput::Google, 10, 8).generate(2);
        let run = pagerank(&g, 4, 15, false);
        // In-degree per vertex.
        let mut indeg = vec![0usize; g.n];
        for &t in &g.targets {
            indeg[t as usize] += 1;
        }
        let max_in = (0..g.n).max_by_key(|&v| indeg[v]).unwrap();
        let zero_in = (0..g.n).find(|&v| indeg[v] == 0).unwrap();
        assert!(run.ranks[max_in] > run.ranks[zero_in] * 5.0);
    }

    #[test]
    fn iteration_stats_are_stable() {
        let g = Kronecker::for_input(GraphInput::Google, 9, 5).generate(3);
        let run = pagerank(&g, 4, 5, false);
        assert_eq!(run.iterations.len(), 5);
        let e0: usize = run.iterations[0].edges_from.iter().sum();
        let e4: usize = run.iterations[4].edges_from.iter().sum();
        assert_eq!(e0, e4, "PageRank activity does not decay");
    }

    #[test]
    fn jobs_build_for_both_frameworks() {
        let cfg = WorkloadConfig::tiny(37);
        let mut m = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let sp = spark(&cfg, &mut m, &mut reg);
        #[allow(clippy::int_plus_one)] // load + 2 per iteration + write
        {
            assert!(sp.stages.len() >= 1 + 2 * cfg.max_iterations + 1);
        }
        let hp = hadoop(&cfg, &mut m, &mut reg);
        assert_eq!(hp.stages.len(), 2 * (cfg.max_iterations / 4).max(2));
        assert!(sp.total_instrs() > 100_000);
        assert!(hp.total_instrs() > 100_000);
    }
}
