//! Grep — scan the corpus for lines containing a pattern.
//!
//! The most uniform of the benchmarks: a streaming scan with tiny output.
//! On Spark it is a single map-only stage, which is why the paper reports
//! grep_sp forming exactly **one** phase (Fig. 9). On Hadoop, a map wave
//! scans and a minimal reduce wave collects the few matches; grep_hp is one
//! of the two Hadoop workloads with no sort phase (Fig. 10), which the
//! builder reproduces by keeping the match volume small enough that the
//! spill sort is skipped entirely.

use simprof_engine::hadoop::HadoopMethods;
use simprof_engine::spark::SparkMethods;
use simprof_engine::{ops, Job, MethodRegistry, OpClass, Stage, Task};
use simprof_sim::Machine;

use super::{hdfs_write_item, partition_ranges};
use crate::config::WorkloadConfig;
use crate::synth::text::TextSynth;

/// Zipf rank of the needle word: rare enough that matches (and therefore
/// output IO) are a trivial fraction of the job, keeping grep essentially a
/// pure scan — the paper's single-phase grep_sp.
const NEEDLE_RANK: usize = 300;

fn synth(cfg: &WorkloadConfig) -> TextSynth {
    TextSynth::new(4_000, 1.0, 10, cfg.sub_seed(0x63E0))
}

fn corpus(cfg: &WorkloadConfig, synth: &TextSynth) -> Vec<String> {
    synth.lines(cfg.text_bytes * 3, cfg.sub_seed(3))
}

/// Builds the Spark Grep job: a single map-only stage.
pub fn spark(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let sm = SparkMethods::intern(reg);
    let filter_fn = reg.intern("org.bigdatabench.grep.MatchFilterFn.apply", OpClass::Map);
    let synth = synth(cfg);
    let needle = synth.word_at(NEEDLE_RANK).to_owned();
    let lines = corpus(cfg, &synth);
    let ranges = partition_ranges(lines.len(), cfg.partitions);

    let mut tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let slice = &lines[lo..hi];
        let seed = cfg.sub_seed(500 + p as u64);
        let bytes: u64 = slice.iter().map(|l| l.len() as u64 + 1).sum();
        let mut items = Vec::new();
        let in_region = machine.alloc(bytes.max(64));
        let (matches, scan) = ops::scan_match(
            slice,
            &needle,
            vec![sm.map_partitions_with_index, filter_fn],
            in_region,
            seed,
        );
        items.push(scan.with_io_stall(cfg.hdfs.read_stall(bytes)));
        let out: u64 = matches.iter().map(|&i| slice[i].len() as u64 + 1).sum();
        items.push(hdfs_write_item(&cfg.hdfs, machine, out, vec![sm.dfs_write], seed));
        tasks.push(Task::new(sm.result_base(), items));
    }
    Job::new(vec![Stage::new("grep-sp-stage0", tasks)])
}

/// Builds the Hadoop Grep job: a map wave plus a minimal collect wave.
pub fn hadoop(cfg: &WorkloadConfig, machine: &mut Machine, reg: &mut MethodRegistry) -> Job {
    let hm = HadoopMethods::intern(reg);
    let mapper = reg.intern("org.bigdatabench.grep.RegexMapper.map", OpClass::Map);
    let collector = reg.intern("org.bigdatabench.grep.IdentityReducer.reduce", OpClass::Reduce);
    let synth = synth(cfg);
    let needle = synth.word_at(NEEDLE_RANK).to_owned();
    let lines = corpus(cfg, &synth);
    let ranges = partition_ranges(lines.len(), cfg.partitions);

    let mut total_match_bytes = 0u64;
    let mut map_tasks = Vec::with_capacity(ranges.len());
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        let slice = &lines[lo..hi];
        let seed = cfg.sub_seed(600 + p as u64);
        let bytes: u64 = slice.iter().map(|l| l.len() as u64 + 1).sum();
        let mut items = Vec::new();
        let in_region = machine.alloc(bytes.max(64));
        let (matches, scan) = ops::scan_match(
            slice,
            &needle,
            vec![mapper, hm.map_output_buffer_collect],
            in_region,
            seed,
        );
        items.push(scan.with_io_stall(cfg.hdfs.read_stall(bytes)));
        let out: u64 = matches.iter().map(|&i| slice[i].len() as u64 + 1).sum();
        total_match_bytes += out;
        items.push(super::spill_item(
            &cfg.hdfs,
            machine,
            out,
            vec![hm.codec_compress, hm.ifile_writer_append],
            seed,
        ));
        map_tasks.push(Task::new(hm.map_base(), items));
    }

    // A single small reducer concatenates the matches to HDFS.
    let seed = cfg.sub_seed(650);
    let mut items = Vec::new();
    let region = machine.alloc(total_match_bytes.max(64));
    items.push(
        simprof_engine::WorkItem::io(
            vec![hm.fetcher_copy],
            total_match_bytes / 6 + 1,
            cfg.shuffle_fetch_stall(total_match_bytes),
            region,
            seed,
        )
        .with_shuffle_bytes(total_match_bytes),
    );
    items.push(hdfs_write_item(
        &cfg.hdfs,
        machine,
        total_match_bytes,
        vec![collector, hm.dfs_write],
        seed,
    ));
    let reduce_tasks = vec![Task::new(hm.reduce_base(), items)];

    Job::new(vec![Stage::new("grep-hp-map", map_tasks), Stage::new("grep-hp-reduce", reduce_tasks)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_sim::MachineConfig;

    #[test]
    fn spark_grep_is_single_stage() {
        let cfg = WorkloadConfig::tiny(3);
        let mut m = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let job = spark(&cfg, &mut m, &mut reg);
        assert_eq!(job.stages.len(), 1);
        assert_eq!(job.stages[0].tasks.len(), cfg.partitions);
    }

    #[test]
    fn hadoop_grep_has_no_sort() {
        let cfg = WorkloadConfig::tiny(3);
        let mut m = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let job = hadoop(&cfg, &mut m, &mut reg);
        let sort_id = reg.lookup("org.apache.hadoop.util.QuickSort.sort").unwrap();
        let has_sort = job
            .stages
            .iter()
            .flat_map(|s| &s.tasks)
            .flat_map(|t| &t.items)
            .any(|i| i.path.contains(&sort_id));
        assert!(!has_sort, "grep_hp must not sort (paper Fig. 10)");
    }

    #[test]
    fn scan_dominates_spark_grep() {
        let cfg = WorkloadConfig::tiny(3);
        let mut m = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let job = spark(&cfg, &mut m, &mut reg);
        let scan_id = reg.lookup("org.bigdatabench.grep.MatchFilterFn.apply").unwrap();
        let scan: u64 = job.stages[0]
            .tasks
            .iter()
            .flat_map(|t| &t.items)
            .filter(|i| i.path.contains(&scan_id))
            .map(|i| i.instrs)
            .sum();
        assert!(scan * 2 > job.total_instrs(), "scan should be ≥ half the work");
    }
}
