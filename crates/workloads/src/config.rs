//! Workload scale configuration.
//!
//! One [`WorkloadConfig`] ties together everything a benchmark run needs:
//! machine geometry, scheduler/profiler settings, HDFS cost model, data
//! sizes, and the seed. The paper profiles 10 GB text inputs and 2^24-node
//! graphs with 100 M-instruction sampling units on real hardware; the scaled
//! presets shrink data and units together (keeping the paper's 10:1
//! unit-to-snapshot ratio) so a full job profile takes milliseconds to
//! seconds while preserving the working-set-vs-cache relationships that
//! produce the phase behaviour.

use simprof_engine::{FaultPlan, Hdfs, Network, SchedConfig};
use simprof_profiler::ProfilerConfig;
use simprof_sim::{MachineConfig, Perturbations};

/// Everything needed to build and profile one workload run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Machine geometry and cost model.
    pub machine: MachineConfig,
    /// Scheduler quantum and OS-noise model.
    pub sched: SchedConfig,
    /// Sampling-unit and snapshot sizes.
    pub profiler: ProfilerConfig,
    /// HDFS latency model.
    pub hdfs: Hdfs,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Number of input partitions (map tasks).
    pub partitions: usize,
    /// Number of reducers.
    pub reducers: usize,
    /// Total text-corpus size in bytes (text benchmarks).
    pub text_bytes: usize,
    /// log2 of the number of graph vertices (graph benchmarks).
    pub graph_scale: u32,
    /// Average out-degree of synthesized graphs.
    pub graph_degree: u32,
    /// Iteration cap for iterative benchmarks (PageRank, CC supersteps).
    pub max_iterations: usize,
    /// JVM GC/JIT noise: probability (ppm) that a scheduler turn is observed
    /// inside the runtime instead of the executor stack (0 disables).
    pub gc_noise_ppm: u32,
    /// Number of cluster nodes the job spans (1 = single node). With N > 1
    /// the machine gets one LLC domain per node and a fraction (N−1)/N of
    /// every shuffle crosses the network.
    pub nodes: usize,
    /// Cluster network cost model (only reached when `nodes > 1`).
    pub network: Network,
}

impl WorkloadConfig {
    /// The figure-generation scale: large enough for a few hundred sampling
    /// units per job, small enough to profile all twelve workloads in
    /// seconds.
    pub fn paper(seed: u64) -> Self {
        Self {
            machine: MachineConfig::scaled(4),
            sched: SchedConfig {
                quantum: 2_500,
                perturbations: Perturbations::with_period(6_000_000, seed ^ 0x0511),
                gc: None, // set per run by the catalog from `gc_noise_ppm`
                cold_restart: None,
                faults: FaultPlan::none(),
            },
            profiler: ProfilerConfig::with_unit(50_000),
            hdfs: Hdfs::default(),
            seed,
            partitions: 8,
            reducers: 4,
            text_bytes: 3 << 20,
            graph_scale: 14,
            graph_degree: 8,
            max_iterations: 8,
            gc_noise_ppm: 45_000,
            nodes: 1,
            network: Network::default(),
        }
    }

    /// The paper-scale config spread over a cluster of `nodes` nodes
    /// (4 cores each): per-node LLC domains, cross-node shuffle costs, and
    /// proportionally more tasks.
    pub fn cluster(seed: u64, nodes: usize) -> Self {
        let nodes = nodes.max(1);
        let mut cfg = Self::paper(seed);
        cfg.machine = MachineConfig::scaled_cluster(nodes, 4);
        cfg.nodes = nodes;
        cfg.partitions = 8 * nodes;
        cfg.reducers = 4 * nodes;
        cfg
    }

    /// A fast scale for unit/integration tests and doctests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            machine: MachineConfig::scaled(2),
            sched: SchedConfig {
                quantum: 2_500,
                perturbations: Perturbations::default(),
                gc: None, // set per run by the catalog from `gc_noise_ppm`
                cold_restart: None,
                faults: FaultPlan::none(),
            },
            profiler: ProfilerConfig::with_unit(20_000),
            hdfs: Hdfs::default(),
            seed,
            partitions: 4,
            reducers: 2,
            text_bytes: 256 << 10,
            graph_scale: 10,
            graph_degree: 6,
            max_iterations: 4,
            gc_noise_ppm: 45_000,
            nodes: 1,
            network: Network::default(),
        }
    }

    /// Derives a sub-seed for a named purpose.
    pub fn sub_seed(&self, salt: u64) -> u64 {
        simprof_stats_split(self.seed, salt)
    }

    /// Fraction of shuffle traffic crossing the network: `(N−1)/N` under
    /// uniform hash partitioning across `N` nodes.
    pub fn remote_fraction(&self) -> f64 {
        if self.nodes <= 1 {
            0.0
        } else {
            (self.nodes - 1) as f64 / self.nodes as f64
        }
    }

    /// Total stall cycles for a shuffle fetch of `bytes`: the local-disk
    /// part (HDFS model) plus the cross-node part (network model).
    pub fn shuffle_fetch_stall(&self, bytes: u64) -> u64 {
        self.hdfs.read_stall(bytes) / 2 + self.network.shuffle_stall(bytes, self.remote_fraction())
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::paper(0)
    }
}

// Local SplitMix64 mix to avoid depending on simprof-stats just for seeding.
fn simprof_stats_split(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_keep_snapshot_ratio() {
        for c in [WorkloadConfig::paper(1), WorkloadConfig::tiny(1)] {
            assert_eq!(c.profiler.unit_instrs / c.profiler.snapshot_instrs, 10);
        }
    }

    #[test]
    fn tiny_is_smaller_than_paper() {
        let t = WorkloadConfig::tiny(0);
        let p = WorkloadConfig::paper(0);
        assert!(t.text_bytes < p.text_bytes);
        assert!(t.graph_scale < p.graph_scale);
        assert!(t.machine.cores <= p.machine.cores);
    }

    #[test]
    fn cluster_preset_scales_resources() {
        let c = WorkloadConfig::cluster(1, 4);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.machine.cores, 16);
        assert_eq!(c.machine.cores_per_llc, 4);
        assert_eq!(c.partitions, 32);
        assert!((c.remote_fraction() - 0.75).abs() < 1e-12);
        // Single node never pays network cost.
        let single = WorkloadConfig::paper(1);
        assert_eq!(single.remote_fraction(), 0.0);
        assert_eq!(single.shuffle_fetch_stall(1 << 20), single.hdfs.read_stall(1 << 20) / 2);
        assert!(c.shuffle_fetch_stall(1 << 20) > single.shuffle_fetch_stall(1 << 20));
    }

    #[test]
    fn sub_seeds_differ() {
        let c = WorkloadConfig::tiny(5);
        assert_ne!(c.sub_seed(1), c.sub_seed(2));
        assert_eq!(c.sub_seed(1), WorkloadConfig::tiny(5).sub_seed(1));
    }
}
