//! BigDataBench-style workloads for SimProf (Table I of the paper).
//!
//! Six benchmarks — Sort, WordCount, Grep, NaiveBayes, Connected Components,
//! PageRank — each implemented on both the Spark-like and the Hadoop-like
//! engine of [`simprof_engine`], plus the data synthesizers the paper uses:
//! a Zipfian text generator (standing in for BigDataBench's text
//! synthesizer) and a Kronecker graph generator with per-input initiator
//! matrices (standing in for the SNAP-derived Kronecker graphs of Table II).
//!
//! Every benchmark does *real* computation on the synthesized data (real
//! tokenization, counting, sorting, label propagation, PageRank iterations)
//! while emitting the machine-model cost trace; see the engine crate docs
//! for the execution-model split.
//!
//! * [`config`] — scale presets tying machine, profiler, and data sizes.
//! * [`synth`] — text and Kronecker graph synthesizers.
//! * [`catalog`] — the `Benchmark × Framework` matrix and its runner.
//! * [`benchmarks`] — the twelve job builders.

pub mod benchmarks;
pub mod catalog;
pub mod config;
pub mod synth;

pub use catalog::{Benchmark, Framework, RunOutput, WorkloadId};
pub use config::WorkloadConfig;
pub use synth::kronecker::{GraphInput, Kronecker, SynthGraph};
pub use synth::text::{LabeledCorpus, TextInput, TextSynth};
