//! Computations behind every table and figure of the paper's evaluation
//! (§IV). Each function returns plain data so the figure binaries only
//! format, and the computations themselves are unit/integration testable.

use serde::Serialize;

use simprof_core::{
    baselines, classify_units, input_sensitivity, phase_type_distribution, relative_error,
    second_points_by_cycles, srs_points, SamplerKind,
};
use simprof_engine::OpClass;
use simprof_stats::split_seed;
use simprof_workloads::{Benchmark, Framework, GraphInput, Kronecker, WorkloadId};

use crate::harness::{run_workload, EvalConfig, WorkloadRun};

/// Table I row: the benchmark suite.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Paper-style workload label.
    pub label: String,
    /// Benchmark category (microbench / ML / graph).
    pub category: &'static str,
    /// Input description.
    pub input: String,
    /// Sampling units profiled.
    pub units: usize,
    /// Total tasks in the job.
    pub tasks: usize,
    /// Total instructions in the job description.
    pub instrs: u64,
}

/// Computes Table I with measured job statistics.
pub fn table1(runs: &[WorkloadRun], cfg: &EvalConfig) -> Vec<Table1Row> {
    runs.iter()
        .map(|r| {
            let category = match r.id.benchmark {
                Benchmark::Sort | Benchmark::WordCount | Benchmark::Grep => "Microbench",
                Benchmark::NaiveBayes => "Machine Learning",
                Benchmark::ConnectedComponents | Benchmark::PageRank => "Graph Analytics",
            };
            let input = if r.id.benchmark.is_graph() {
                format!("2^{} nodes", cfg.workload.graph_scale)
            } else {
                format!("{} KiB text", cfg.workload.text_bytes / 1024)
            };
            Table1Row {
                label: r.label.clone(),
                category,
                input,
                units: r.output.trace.units.len(),
                tasks: r.output.total_tasks,
                instrs: r.output.total_instrs,
            }
        })
        .collect()
}

/// Table II row: one synthesized graph input.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Input name (Google, Facebook, …).
    pub name: &'static str,
    /// Input family description.
    pub kind: &'static str,
    /// Role in the sensitivity study.
    pub role: &'static str,
    /// Vertices.
    pub nodes: usize,
    /// Edges.
    pub edges: usize,
    /// Maximum out-degree (skew signal).
    pub max_degree: usize,
}

/// Computes Table II by synthesizing every input at the evaluation scale.
pub fn table2(cfg: &EvalConfig) -> Vec<Table2Row> {
    GraphInput::ALL
        .iter()
        .map(|&input| {
            let g =
                Kronecker::for_input(input, cfg.workload.graph_scale, cfg.workload.graph_degree)
                    .generate(graph_seed(cfg, input));
            let kind = match input {
                GraphInput::Google | GraphInput::Stanford => "Web graph",
                GraphInput::Facebook => "Social network",
                GraphInput::Flickr => "Online communities",
                GraphInput::Wikipedia => "Online encyclopedia",
                GraphInput::Dblp => "CS bibliography",
                GraphInput::Amazon => "Co-purchasing network",
                GraphInput::Road => "Road network",
            };
            Table2Row {
                name: input.label(),
                kind,
                role: if input == GraphInput::Google {
                    "training input"
                } else {
                    "reference input"
                },
                nodes: g.n,
                edges: g.edge_count(),
                max_degree: g.max_degree(),
            }
        })
        .collect()
}

fn graph_seed(cfg: &EvalConfig, input: GraphInput) -> u64 {
    split_seed(cfg.workload.seed, 0x6120 + input as u64)
}

/// Fig. 6 row: CoV of CPIs.
#[derive(Debug, Clone, Serialize)]
pub struct Fig06Row {
    /// Workload label.
    pub label: String,
    /// CoV over all sampling units.
    pub population: f64,
    /// Per-phase CoV weighted by phase size.
    pub weighted: f64,
    /// Largest per-phase CoV.
    pub max: f64,
}

/// Computes Fig. 6 (population / weighted / max CoV per workload).
pub fn fig06(runs: &[WorkloadRun]) -> Vec<Fig06Row> {
    runs.iter()
        .map(|r| Fig06Row {
            label: r.label.clone(),
            population: r.analysis.cov.population,
            weighted: r.analysis.cov.weighted,
            max: r.analysis.cov.max,
        })
        .collect()
}

/// Fig. 7 row: CPI sampling error of the four approaches.
#[derive(Debug, Clone, Serialize)]
pub struct Fig07Row {
    /// Workload label ("average" for the summary row).
    pub label: String,
    /// SECOND error.
    pub second: f64,
    /// SRS error (mean absolute over repetitions).
    pub srs: f64,
    /// CODE error.
    pub code: f64,
    /// SimProf error (mean absolute over repetitions).
    pub simprof: f64,
}

impl Fig07Row {
    /// Error of the given sampler kind, or `None` for samplers that are not
    /// part of the paper's Fig. 7 (the systematic baseline lives in the
    /// `ext_systematic` experiment instead).
    pub fn of(&self, kind: SamplerKind) -> Option<f64> {
        match kind {
            SamplerKind::Second => Some(self.second),
            SamplerKind::Srs => Some(self.srs),
            SamplerKind::Code => Some(self.code),
            SamplerKind::SimProf => Some(self.simprof),
            SamplerKind::Systematic => None,
        }
    }
}

/// Computes Fig. 7: the CPI sampling error of SECOND / SRS / CODE / SimProf
/// per workload, with the average row appended last.
pub fn fig07(runs: &[WorkloadRun], cfg: &EvalConfig) -> Vec<Fig07Row> {
    let mut rows: Vec<Fig07Row> = runs
        .iter()
        .map(|r| {
            let trace = &r.output.trace;
            let oracle = trace.oracle_cpi();
            let n = cfg.fig7_sample_size;

            let second = second_points_by_cycles(trace, cfg.second_cycles);
            let second_err = relative_error(second.predicted_cpi, oracle);

            let code = baselines::code_points(&r.analysis.model, trace);
            let code_err = relative_error(code.predicted_cpi, oracle);

            let mut srs_err = 0.0;
            let mut simprof_err = 0.0;
            for rep in 0..cfg.fig7_reps {
                let seed = split_seed(cfg.simprof.seed, 0xF167 + rep);
                srs_err += relative_error(srs_points(trace, n, seed).predicted_cpi, oracle);
                let sp = baselines::simprof_points(&r.analysis.model, trace, n, seed);
                simprof_err += relative_error(sp.predicted_cpi, oracle);
            }
            srs_err /= cfg.fig7_reps as f64;
            simprof_err /= cfg.fig7_reps as f64;

            Fig07Row {
                label: r.label.clone(),
                second: second_err,
                srs: srs_err,
                code: code_err,
                simprof: simprof_err,
            }
        })
        .collect();

    let n = rows.len().max(1) as f64;
    rows.push(Fig07Row {
        label: "average".into(),
        second: rows.iter().map(|r| r.second).sum::<f64>() / n,
        srs: rows.iter().map(|r| r.srs).sum::<f64>() / n,
        code: rows.iter().map(|r| r.code).sum::<f64>() / n,
        simprof: rows.iter().map(|r| r.simprof).sum::<f64>() / n,
    });
    rows
}

/// Fig. 8 row: required sample sizes.
#[derive(Debug, Clone, Serialize)]
pub struct Fig08Row {
    /// Workload label ("average" for the summary row).
    pub label: String,
    /// SimProf sample size for 5 % error at 99.7 % confidence.
    pub simprof_5pct: usize,
    /// SimProf sample size for 2 % error at 99.7 % confidence.
    pub simprof_2pct: usize,
    /// Units covered by the SECOND interval.
    pub second_units: usize,
}

/// Computes Fig. 8: SimProf's required sample sizes (99.7 % CI, 5 %/2 %
/// error) against the unit count of the SECOND interval.
pub fn fig08(runs: &[WorkloadRun], cfg: &EvalConfig) -> Vec<Fig08Row> {
    let mut rows: Vec<Fig08Row> = runs
        .iter()
        .map(|r| Fig08Row {
            label: r.label.clone(),
            simprof_5pct: r.analysis.required_size(3.0, 0.05),
            simprof_2pct: r.analysis.required_size(3.0, 0.02),
            second_units: second_points_by_cycles(&r.output.trace, cfg.second_cycles).points.len(),
        })
        .collect();
    let n = rows.len().max(1);
    rows.push(Fig08Row {
        label: "average".into(),
        simprof_5pct: rows.iter().map(|r| r.simprof_5pct).sum::<usize>() / n,
        simprof_2pct: rows.iter().map(|r| r.simprof_2pct).sum::<usize>() / n,
        second_units: rows.iter().map(|r| r.second_units).sum::<usize>() / n,
    });
    rows
}

/// Fig. 9 row: phase count.
#[derive(Debug, Clone, Serialize)]
pub struct Fig09Row {
    /// Workload label.
    pub label: String,
    /// Number of phases the silhouette rule chose.
    pub phases: usize,
}

/// Computes Fig. 9 (number of phases per workload).
pub fn fig09(runs: &[WorkloadRun]) -> Vec<Fig09Row> {
    runs.iter().map(|r| Fig09Row { label: r.label.clone(), phases: r.analysis.k() }).collect()
}

/// Fig. 10 row: phase-type distribution.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Row {
    /// Workload label.
    pub label: String,
    /// Fraction of sampling units in map-dominated phases.
    pub map: f64,
    /// … reduce-dominated phases.
    pub reduce: f64,
    /// … sort-dominated phases.
    pub sort: f64,
    /// … IO-dominated phases.
    pub io: f64,
    /// … framework-only phases (rare).
    pub framework: f64,
}

/// Computes Fig. 10 (phase-type breakdown, weighted by sampling units).
pub fn fig10(runs: &[WorkloadRun]) -> Vec<Fig10Row> {
    runs.iter()
        .map(|r| {
            let dist =
                phase_type_distribution(&r.analysis.model, &r.output.trace, &r.output.registry);
            let share = |c: OpClass| dist.iter().find(|d| d.class == c).map_or(0.0, |d| d.share);
            Fig10Row {
                label: r.label.clone(),
                map: share(OpClass::Map),
                reduce: share(OpClass::Reduce),
                sort: share(OpClass::Sort),
                io: share(OpClass::Io),
                framework: share(OpClass::Framework),
            }
        })
        .collect()
}

/// Fig. 11 row: one phase of cc_sp under optimal allocation.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// Phase index (sorted by weight, descending — the paper's ordering).
    pub phase: usize,
    /// Share of the simulation points allocated to this phase.
    pub sample_size_ratio: f64,
    /// CoV of CPI within the phase.
    pub cov: f64,
    /// Phase weight `N_h / N`.
    pub weight: f64,
    /// The phase's heaviest method (the paper names `aggregateUsingIndex`
    /// and `mapPartitionsWithIndex` for phases 0 and 1).
    pub top_method: String,
}

/// Computes Fig. 11: how optimal allocation distributes `n` simulation
/// points across cc_sp's phases.
pub fn fig11(run: &WorkloadRun, n: usize, seed: u64) -> Vec<Fig11Row> {
    let a = &run.analysis;
    let points = a.select_points(n, seed);
    let ratios = points.phase_ratios();
    let mut order: Vec<usize> = (0..a.k()).collect();
    order.sort_by(|&x, &y| a.weights[y].partial_cmp(&a.weights[x]).unwrap());
    order
        .into_iter()
        .enumerate()
        .map(|(rank, h)| {
            let top = a.model.top_methods(h, 1);
            let top_method = top
                .first()
                .map(|&(m, _)| {
                    run.output.registry.name(simprof_engine::MethodId(m as u32)).to_owned()
                })
                .unwrap_or_default();
            Fig11Row {
                phase: rank,
                sample_size_ratio: ratios[h],
                cov: a.stats[h].cov,
                weight: a.weights[h],
                top_method,
            }
        })
        .collect()
}

/// Figs. 12–13 row: input-sensitivity outcome for one graph workload.
#[derive(Debug, Clone, Serialize)]
pub struct SensitivityRow {
    /// Workload label (cc_hp, cc_sp, rank_hp, rank_sp).
    pub label: String,
    /// Fraction of simulation points in input-sensitive phases (Fig. 12's
    /// reference-input sample size; `1 −` this is the reduction).
    pub sensitive_point_fraction: f64,
    /// Number of input-sensitive phases (Fig. 13).
    pub sensitive_phases: usize,
    /// Number of input-insensitive phases (Fig. 13).
    pub insensitive_phases: usize,
}

/// Runs the §IV-E input-sensitivity study: for each graph workload, train on
/// the Google input, classify the seven reference inputs, apply the Eq. 6
/// test, and measure the simulation-point reduction for `n` points.
pub fn fig12_13(cfg: &EvalConfig, n_points: usize) -> Vec<SensitivityRow> {
    // The sensitivity study runs at double the graph scale of the main
    // matrix: Algorithm 1 compares per-phase statistics of *classified*
    // reference units, which need enough units per phase per input to be
    // meaningful (the paper's graphs are 2^20–2^24 nodes).
    let mut cfg = *cfg;
    cfg.workload.graph_scale += 1;
    cfg.workload.graph_degree += 2;
    let cfg = &cfg;
    let mut rows = Vec::new();
    for benchmark in [Benchmark::ConnectedComponents, Benchmark::PageRank] {
        for framework in Framework::ALL {
            let id = WorkloadId { benchmark, framework };
            // Training input (Google) — same seed as the main runs.
            let train = run_workload(id, cfg);
            // Reference inputs.
            let refs: Vec<_> = GraphInput::ALL
                .iter()
                .filter(|&&i| i != GraphInput::Google)
                .map(|&input| {
                    let g = Kronecker::for_input(
                        input,
                        cfg.workload.graph_scale,
                        cfg.workload.graph_degree,
                    )
                    .generate(graph_seed(cfg, input));
                    benchmark.run_on_graph(framework, &cfg.workload, &g).trace
                })
                .collect();
            let ref_refs: Vec<&_> = refs.iter().collect();
            let report =
                input_sensitivity(&train.analysis.model, &train.output.trace, &ref_refs, 0.10);
            let points = train.analysis.select_points(n_points, cfg.simprof.seed);
            rows.push(SensitivityRow {
                label: train.label,
                sensitive_point_fraction: report.sensitive_point_fraction(&points),
                sensitive_phases: report.sensitive_count(),
                insensitive_phases: report.insensitive_count(),
            });
        }
    }
    rows
}

/// Figs. 14–15 point: one sampling unit in the phase-sorted CPI scatter.
#[derive(Debug, Clone, Serialize)]
pub struct ScatterPoint {
    /// Position after sorting units by phase id (the paper's x-axis).
    pub order: usize,
    /// Original unit id.
    pub unit: u64,
    /// The unit's CPI (left y-axis, blue dots).
    pub cpi: f64,
    /// The unit's phase id (right y-axis, red line).
    pub phase: usize,
}

/// Computes the Fig. 14/15 series: units sorted by phase id, carrying CPI
/// and phase id.
pub fn fig14_15(run: &WorkloadRun) -> Vec<ScatterPoint> {
    let a = &run.analysis;
    let mut idx: Vec<usize> = (0..a.cpis.len()).collect();
    idx.sort_by_key(|&i| (a.model.assignments[i], i));
    idx.into_iter()
        .enumerate()
        .map(|(order, i)| ScatterPoint {
            order,
            unit: run.output.trace.units[i].id,
            cpi: a.cpis[i],
            phase: a.model.assignments[i],
        })
        .collect()
}

/// Classifies a reference trace against a training model (shared by the
/// integration tests and the sensitivity example).
pub fn classify_reference(
    train: &WorkloadRun,
    reference: &simprof_profiler::ProfileTrace,
) -> Vec<usize> {
    classify_units(&train.analysis.model, reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_all_workloads;

    fn runs() -> (Vec<WorkloadRun>, EvalConfig) {
        let cfg = EvalConfig::tiny(5);
        (run_all_workloads(&cfg), cfg)
    }

    #[test]
    fn tables_and_figures_have_twelve_rows() {
        let (runs, cfg) = runs();
        assert_eq!(table1(&runs, &cfg).len(), 12);
        assert_eq!(fig06(&runs).len(), 12);
        assert_eq!(fig09(&runs).len(), 12);
        assert_eq!(fig10(&runs).len(), 12);
        assert_eq!(fig07(&runs, &cfg).len(), 13, "12 + average");
        assert_eq!(fig08(&runs, &cfg).len(), 13);
    }

    #[test]
    fn table2_has_eight_graphs_google_training() {
        let cfg = EvalConfig::tiny(5);
        let t2 = table2(&cfg);
        assert_eq!(t2.len(), 8);
        assert_eq!(t2[0].name, "Google");
        assert_eq!(t2[0].role, "training input");
        assert!(t2.iter().skip(1).all(|r| r.role == "reference input"));
        assert!(t2.iter().all(|r| r.edges > 0));
    }

    #[test]
    fn fig10_shares_sum_to_one() {
        let (runs, _) = runs();
        for row in fig10(&runs) {
            let sum = row.map + row.reduce + row.sort + row.io + row.framework;
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", row.label);
        }
    }

    #[test]
    fn fig11_ratios_sum_to_one() {
        let (runs, cfg) = runs();
        let cc_sp = runs.iter().find(|r| r.label == "cc_sp").unwrap();
        let rows = fig11(cc_sp, 20, cfg.simprof.seed);
        let total: f64 = rows.iter().map(|r| r.sample_size_ratio).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let wsum: f64 = rows.iter().map(|r| r.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        // Sorted by weight descending.
        assert!(rows.windows(2).all(|w| w[0].weight >= w[1].weight));
    }

    #[test]
    fn fig14_sorts_by_phase() {
        let (runs, _) = runs();
        let wc_sp = runs.iter().find(|r| r.label == "wc_sp").unwrap();
        let pts = fig14_15(wc_sp);
        assert_eq!(pts.len(), wc_sp.output.trace.units.len());
        assert!(pts.windows(2).all(|w| w[0].phase <= w[1].phase));
    }
}
