//! Regenerates Fig. 9: number of phases per workload (paper: Spark range is
//! much wider — 1 for grep_sp up to 9 for cc_sp).

use simprof_bench::report::render_table;
use simprof_bench::{figures, run_all_workloads, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let rows: Vec<Vec<String>> =
        figures::fig09(&runs).into_iter().map(|r| vec![r.label, r.phases.to_string()]).collect();
    println!("Fig. 9 — Number of phases");
    println!("{}", render_table(&["workload", "phases"], &rows));
}
