//! Regenerates Fig. 10: phase-type distribution (map / reduce / sort / IO),
//! weighted by sampling units.

use simprof_bench::report::{pct, render_table};
use simprof_bench::{figures, run_all_workloads, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let rows: Vec<Vec<String>> = figures::fig10(&runs)
        .into_iter()
        .map(|r| vec![r.label, pct(r.map), pct(r.reduce), pct(r.sort), pct(r.io), pct(r.framework)])
        .collect();
    println!("Fig. 10 — Phase type distribution");
    println!("{}", render_table(&["workload", "map", "reduce", "sort", "io", "framework"], &rows));
}
