//! Calibration probe: per-workload unit counts, phases, CoV, sample sizes.

use simprof_bench::{run_all_workloads, EvalConfig};
use std::time::Instant;

fn main() {
    let cfg = EvalConfig::paper(42);
    let t0 = Instant::now();
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    println!("ran 12 workloads in {:.1?}", t0.elapsed());
    println!(
        "{:>10} {:>6} {:>8} {:>4} {:>7} {:>7} {:>7} {:>8} {:>8} {:>10}",
        "workload", "units", "cpi", "k", "covPop", "covW", "covMax", "n@5%", "n@2%", "cycles"
    );
    for r in &runs {
        let a = &r.analysis;
        let cycles = r.output.trace.total_cycles();
        println!(
            "{:>10} {:>6} {:>8.3} {:>4} {:>7.3} {:>7.3} {:>7.3} {:>8} {:>8} {:>10}",
            r.label,
            r.output.trace.units.len(),
            a.oracle_cpi(),
            a.k(),
            a.cov.population,
            a.cov.weighted,
            a.cov.max,
            a.required_size(3.0, 0.05),
            a.required_size(3.0, 0.02),
            cycles
        );
    }
}
