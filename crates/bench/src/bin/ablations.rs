//! Ablation studies for the design choices DESIGN.md calls out. Unlike the
//! Criterion benches (which measure time), these measure *quality* — CPI
//! estimation error or phase structure — under each variant.
//!
//! 1. Allocation policy: Neyman optimal vs proportional vs CODE-style
//!    one-per-phase (the paper's central design choice, §III-C).
//! 2. Feature-selection K: 10 / 50 / 100 / all (§III-B sets K = 100).
//! 3. Snapshot frequency: unit/5, unit/10 (paper), unit/50 (§III-A tuning).
//! 4. OS-noise perturbations on/off (§III-B-1's heterogeneity source).

use simprof_bench::report::{f3, pct, render_table};
use simprof_bench::{harness, EvalConfig};
use simprof_core::{baselines, estimate_stratified, relative_error, SimProf, SimProfConfig};
use simprof_stats::{mean, proportional_allocation, seeded, srs_indices, stratified::StratumStats};
use simprof_workloads::{Benchmark, Framework, WorkloadId};

fn main() {
    let cfg = EvalConfig::paper(42);
    allocation_ablation(&cfg);
    feature_k_ablation(&cfg);
    snapshot_frequency_ablation(&cfg);
    perturbation_ablation(&cfg);
    unit_size_ablation(&cfg);
    k_selection_ablation(&cfg);
}

/// Neyman vs proportional vs CODE on the same phase model (wc_hp, n = 20).
fn allocation_ablation(cfg: &EvalConfig) {
    println!("\n== Ablation 1: allocation policy (wc_hp, n = 20, 40 reps) ==");
    let run = harness::run_workload(
        WorkloadId { benchmark: Benchmark::WordCount, framework: Framework::Hadoop },
        cfg,
    );
    let a = &run.analysis;
    let oracle = a.oracle_cpi();
    let n = 20;
    let reps = 40u64;

    // Neyman (SimProf) and proportional share the stratified estimator;
    // only the allocation differs.
    let strata: Vec<StratumStats> = {
        use simprof_core::sampling::strata_of;
        strata_of(&a.cpis, &a.model.assignments, a.k())
    };
    let mut rows = Vec::new();
    for (name, proportional) in [("Neyman (SimProf)", false), ("proportional", true)] {
        let mut err = 0.0;
        for rep in 0..reps {
            let mut points = a.select_points(n, 900 + rep);
            if proportional {
                // Re-draw with proportional allocation.
                let alloc = proportional_allocation(n, &strata);
                let mut members: Vec<Vec<u64>> = vec![Vec::new(); a.k()];
                for (i, &ph) in a.model.assignments.iter().enumerate() {
                    members[ph].push(i as u64);
                }
                let mut rng = seeded(900 + rep);
                points.per_phase = members
                    .iter()
                    .zip(&alloc)
                    .map(|(ids, &nh)| {
                        srs_indices(ids.len(), nh, &mut rng).into_iter().map(|i| ids[i]).collect()
                    })
                    .collect();
                points.allocation = alloc;
                points.points = points.per_phase.iter().flatten().copied().collect();
            }
            let est = estimate_stratified(&a.cpis, &a.model.assignments, &points, 3.0);
            err += relative_error(est.mean_cpi, oracle);
        }
        rows.push(vec![name.to_string(), pct(err / reps as f64)]);
    }
    let code = baselines::code_points(&a.model, &run.output.trace);
    rows.push(vec![
        format!("CODE (1/phase, {} pts)", code.points.len()),
        pct(relative_error(code.predicted_cpi, oracle)),
    ]);
    println!("{}", render_table(&["policy", "mean |error|"], &rows));
}

/// Feature-selection K sweep: clustering quality (weighted CoV) and error.
fn feature_k_ablation(cfg: &EvalConfig) {
    println!("== Ablation 2: feature-selection K (cc_sp) ==");
    let out = Benchmark::ConnectedComponents.run_full(Framework::Spark, &cfg.workload);
    let mut rows = Vec::new();
    for k in [10usize, 50, 100, 10_000] {
        let sp = SimProf::new(SimProfConfig { top_k: k, seed: 42, ..Default::default() });
        let a = sp.analyze(&out.trace).expect("workload trace is valid");
        let mut err = 0.0;
        let reps = 20u64;
        for rep in 0..reps {
            let pts = a.select_points(20, 300 + rep);
            err += relative_error(a.estimate(&pts, 3.0).mean_cpi, a.oracle_cpi());
        }
        rows.push(vec![
            if k >= 10_000 { "all".into() } else { k.to_string() },
            a.k().to_string(),
            f3(a.cov.weighted),
            pct(err / reps as f64),
        ]);
    }
    println!("{}", render_table(&["K", "phases", "weighted CoV", "mean |error| (n=20)"], &rows));
}

/// Snapshot frequency: profile fidelity vs snapshot count (§III-A).
fn snapshot_frequency_ablation(cfg: &EvalConfig) {
    println!("== Ablation 3: snapshot frequency (wc_hp) ==");
    let mut rows = Vec::new();
    for (label, divisor) in [("unit/5", 5u64), ("unit/10 (paper)", 10), ("unit/50", 50)] {
        let mut wl = cfg.workload;
        wl.profiler.snapshot_instrs = (wl.profiler.unit_instrs / divisor).max(1);
        let out = Benchmark::WordCount.run_full(Framework::Hadoop, &wl);
        let a = SimProf::new(cfg.simprof).analyze(&out.trace).expect("workload trace is valid");
        rows.push(vec![
            label.to_string(),
            out.trace.units.first().map_or(0, |u| u.snapshots).to_string(),
            a.k().to_string(),
            f3(a.cov.weighted),
        ]);
    }
    println!(
        "{}",
        render_table(&["snapshot period", "snaps/unit", "phases", "weighted CoV"], &rows)
    );
}

/// OS-noise perturbations: effect on intra-phase homogeneity (§III-B-1).
fn perturbation_ablation(cfg: &EvalConfig) {
    println!("== Ablation 4: OS perturbations (wc_sp) ==");
    let mut rows = Vec::new();
    for (label, level) in
        [("off", 0u8), ("on (paper-like noise)", 1), ("strong (migrate every 400k instrs)", 2)]
    {
        let mut wl = cfg.workload;
        match level {
            0 => {
                wl.sched.perturbations = simprof_sim::Perturbations::default();
                wl.gc_noise_ppm = 0;
            }
            2 => {
                wl.sched.perturbations = simprof_sim::Perturbations::with_period(400_000, 99);
                wl.gc_noise_ppm = 120_000;
            }
            _ => {}
        }
        let out = Benchmark::WordCount.run_full(Framework::Spark, &wl);
        let a = SimProf::new(cfg.simprof).analyze(&out.trace).expect("workload trace is valid");
        rows.push(vec![label.to_string(), a.k().to_string(), f3(a.cov.weighted), f3(a.cov.max)]);
    }
    println!("{}", render_table(&["perturbations", "phases", "weighted CoV", "max CoV"], &rows));
}

/// Sampling-unit size: the paper picks 100 M instructions "to avoid the
/// simulation start-up effect"; this sweep shows the trade-off between unit
/// count (statistical power) and per-unit stability at our scale.
fn unit_size_ablation(cfg: &EvalConfig) {
    println!("== Ablation 5: sampling-unit size (wc_sp, n = 20, 20 reps) ==");
    let mut rows = Vec::new();
    for (label, unit) in [("25k", 25_000u64), ("50k (default)", 50_000), ("100k", 100_000)] {
        let mut wl = cfg.workload;
        wl.profiler = simprof_profiler::ProfilerConfig::with_unit(unit);
        let out = Benchmark::WordCount.run_full(Framework::Spark, &wl);
        let a = SimProf::new(cfg.simprof).analyze(&out.trace).expect("workload trace is valid");
        let oracle = a.oracle_cpi();
        let reps = 20u64;
        let mut err = 0.0;
        for rep in 0..reps {
            let pts = a.select_points(20.min(out.trace.units.len()), 40 + rep);
            err += relative_error(a.estimate(&pts, 3.0).mean_cpi, oracle);
        }
        rows.push(vec![
            label.to_string(),
            out.trace.units.len().to_string(),
            a.k().to_string(),
            f3(a.cov.weighted),
            pct(err / reps as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["unit size", "units", "phases", "weighted CoV", "mean |error|"], &rows)
    );
}

/// k-selection rule: the paper's silhouette-90 % rule vs the SimPoint/
/// X-means BIC rule (Perelman et al., related work §V).
fn k_selection_ablation(cfg: &EvalConfig) {
    use simprof_core::{homogeneity, FeatureSpace};
    use simprof_stats::{choose_k, choose_k_bic};
    println!("== Ablation 6: k-selection rule (silhouette vs BIC) ==");
    let mut rows = Vec::new();
    for id in simprof_workloads::WorkloadId::all() {
        let out = id.run_full(&cfg.workload);
        let (_, projected) = FeatureSpace::fit(&out.trace, cfg.simprof.top_k);
        let sil = choose_k(&projected, 20, 0.9, 0.25, cfg.simprof.seed);
        let bic = choose_k_bic(&projected, 20, 0.9, cfg.simprof.seed);
        let cpis = out.trace.cpis();
        let sil_cov = homogeneity(&cpis, &sil.result.assignments).weighted;
        let bic_cov = homogeneity(&cpis, &bic.result.assignments).weighted;
        rows.push(vec![id.label(), sil.k.to_string(), f3(sil_cov), bic.k.to_string(), f3(bic_cov)]);
    }
    println!(
        "{}",
        render_table(&["workload", "k (silhouette)", "w.CoV", "k (BIC)", "w.CoV"], &rows)
    );
}

// Quiet the unused-import lint for `mean`, used only in debug builds of
// earlier revisions.
#[allow(dead_code)]
fn _keep(xs: &[f64]) -> f64 {
    mean(xs)
}
