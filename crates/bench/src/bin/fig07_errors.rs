//! Regenerates Fig. 7: CPI sampling errors of SECOND, SRS, CODE, and
//! SimProf (sample size 20; paper averages: 6.5 %, 8.9 %, 4.0 %, 1.6 %).

use simprof_bench::report::{pct, render_table};
use simprof_bench::{figures, run_all_workloads, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let rows: Vec<Vec<String>> = figures::fig07(&runs, &cfg)
        .into_iter()
        .map(|r| vec![r.label, pct(r.second), pct(r.srs), pct(r.code), pct(r.simprof)])
        .collect();
    println!("Fig. 7 — CPI sampling error by approach (n = {})", cfg.fig7_sample_size);
    println!("{}", render_table(&["workload", "SECOND", "SRS", "CODE", "SimProf"], &rows));
}
