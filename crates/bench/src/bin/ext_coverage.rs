//! Extension experiment: empirical CI coverage of the stratified estimator.
//!
//! The paper's Eqs. 2–4 state confidence intervals for the sampled CPI; the
//! `core::diagnostics` module turns them into a measurable claim. This
//! harness profiles each workload once (full trace = oracle), then replays
//! `--reps` independent seeded point selections, counting how often the
//! stated overall interval covers the full-trace oracle CPI and how often
//! each phase's interval covers that phase's true mean. A z = 1.96 interval
//! claiming 95 % should cover ≈ 95 % of the time; phases covering below the
//! [`simprof_core::FLAG_BELOW`] threshold are flagged — the same check
//! `simprof diagnose` runs, here across a workload matrix with a CI gate.
//!
//! ```text
//! cargo run --release -p simprof-bench --bin ext_coverage -- \
//!     [--quick] [--reps N] [--points N] [--z Z] [--seed S] \
//!     [--min-coverage X] [-o EXT_coverage.json] [--threads N]
//! ```
//!
//! With `--min-coverage`, exits nonzero when any workload's overall
//! coverage falls below the bar (CI's estimator-honesty smoke).

use simprof_bench::report::{f3, pct, render_table};
use simprof_bench::{apply_thread_flag, EvalConfig};
use simprof_core::{coverage, SimProf, FLAG_BELOW};
use simprof_stats::split_seed;
use simprof_workloads::{Benchmark, Framework, WorkloadId};

struct Args {
    reps: usize,
    points: usize,
    z: f64,
    seed: u64,
    quick: bool,
    min_coverage: Option<f64>,
    output: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv = apply_thread_flag(std::env::args().skip(1).collect())?;
    let mut args = Args {
        reps: 50,
        points: 20,
        z: 1.96,
        seed: 42,
        quick: false,
        min_coverage: None,
        output: None,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--reps" => {
                args.reps = value(&flag)?.parse().map_err(|e| format!("invalid --reps: {e}"))?
            }
            "--points" | "-n" => {
                args.points = value(&flag)?.parse().map_err(|e| format!("invalid --points: {e}"))?
            }
            "--z" => args.z = value(&flag)?.parse().map_err(|e| format!("invalid --z: {e}"))?,
            "--seed" => {
                args.seed = value(&flag)?.parse().map_err(|e| format!("invalid --seed: {e}"))?
            }
            "--min-coverage" => {
                args.min_coverage = Some(
                    value(&flag)?.parse().map_err(|e| format!("invalid --min-coverage: {e}"))?,
                )
            }
            "-o" | "--output" => args.output = Some(value(&flag)?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.reps == 0 || args.points == 0 || args.z <= 0.0 {
        return Err("need --reps ≥ 1, --points ≥ 1, --z > 0".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cfg = if args.quick { EvalConfig::tiny(args.seed) } else { EvalConfig::paper(args.seed) };
    let workloads: &[WorkloadId] = if args.quick {
        &[
            WorkloadId { benchmark: Benchmark::WordCount, framework: Framework::Spark },
            WorkloadId { benchmark: Benchmark::Grep, framework: Framework::Spark },
        ]
    } else {
        &[
            WorkloadId { benchmark: Benchmark::WordCount, framework: Framework::Spark },
            WorkloadId { benchmark: Benchmark::Grep, framework: Framework::Spark },
            WorkloadId { benchmark: Benchmark::Sort, framework: Framework::Hadoop },
            WorkloadId { benchmark: Benchmark::ConnectedComponents, framework: Framework::Spark },
        ]
    };

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut worst: Option<(String, f64)> = None;
    for (wi, id) in workloads.iter().enumerate() {
        let out = id.run_full(&cfg.workload);
        let analysis =
            SimProf::new(cfg.simprof).analyze(&out.trace).expect("workload trace is valid");
        let rep = coverage(
            &analysis,
            args.points,
            args.z,
            args.reps,
            split_seed(args.seed, 0xC0FE + wi as u64),
            FLAG_BELOW,
        );
        let flagged = rep.flagged_phases();
        rows.push(vec![
            id.label(),
            analysis.cpis.len().to_string(),
            analysis.k().to_string(),
            f3(rep.oracle_cpi),
            pct(rep.overall_coverage),
            f3(rep.mean_half_width),
            if flagged.is_empty() { "-".into() } else { format!("{flagged:?}") },
        ]);
        match &worst {
            Some((_, c)) if *c <= rep.overall_coverage => {}
            _ => worst = Some((id.label(), rep.overall_coverage)),
        }
        records.push(serde_json::json!({
            "workload": id.label(),
            "units": analysis.cpis.len(),
            "phases": analysis.k(),
            "coverage": serde_json::to_value(&rep),
        }));
    }

    println!(
        "Extension — empirical CI coverage ({} reps of n = {}, z = {})",
        args.reps, args.points, args.z
    );
    println!(
        "{}",
        render_table(
            &["workload", "units", "phases", "oracle CPI", "coverage", "half-width", "flagged"],
            &rows
        )
    );
    println!(
        "Coverage is the fraction of seeded replications whose stated interval\n\
         contained the full-trace oracle; phases covering below {:.0}% are\n\
         flagged (the sd-floor guard makes intervals conservative, so honest\n\
         phases sit at or above the nominal level).",
        FLAG_BELOW * 100.0
    );
    let (worst_label, worst_cov) = worst.expect("at least one workload ran");
    println!("worst overall coverage: {} ({worst_label})", pct(worst_cov));

    if let Some(path) = &args.output {
        let doc = serde_json::json!({
            "bench": "ext_coverage/ci_coverage",
            "reps": args.reps,
            "points": args.points,
            "z": args.z,
            "seed": args.seed,
            "quick": args.quick,
            "min_coverage": args.min_coverage,
            "worst_overall_coverage": worst_cov,
            "workloads": serde_json::Value::Array(records),
        });
        let text = serde_json::to_string_pretty(&doc).expect("record encodes");
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if let Some(bar) = args.min_coverage {
        if worst_cov < bar {
            eprintln!(
                "error: overall coverage {} ({worst_label}) below --min-coverage {bar}",
                pct(worst_cov)
            );
            std::process::exit(1);
        }
        println!("coverage smoke: every workload at or above {bar}");
    }
}
