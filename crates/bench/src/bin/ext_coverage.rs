//! Extension experiment: empirical CI coverage of the stratified estimator.
//!
//! The paper's Eqs. 2–4 state confidence intervals for the sampled CPI; the
//! `core::diagnostics` module turns them into a measurable claim. This
//! harness profiles each workload once (full trace = oracle), then replays
//! `--reps` independent seeded point selections, counting how often the
//! stated overall interval covers the full-trace oracle CPI and how often
//! each phase's interval covers that phase's true mean. A z = 1.96 interval
//! claiming 95 % should cover ≈ 95 % of the time; phases covering below the
//! [`simprof_core::FLAG_BELOW`] threshold are flagged — the same check
//! `simprof diagnose` runs, here across a workload matrix with a CI gate.
//!
//! ```text
//! cargo run --release -p simprof-bench --bin ext_coverage -- \
//!     [--quick] [--reps N] [--points N] [--z Z] [--seed S] \
//!     [--min-coverage X] [-o EXT_coverage.json] [--threads N]
//! ```
//!
//! With `--min-coverage`, exits nonzero when any workload's overall
//! coverage falls below the bar (CI's estimator-honesty smoke).

use simprof_bench::report::{f3, pct, render_table};
use simprof_bench::{apply_thread_flag, EvalConfig};
use simprof_core::{coverage, LiveAnalyzer, LiveConfig, SimProf, SimProfConfig, FLAG_BELOW};
use simprof_profiler::{ProfileTrace, UnitSink};
use simprof_stats::split_seed;
use simprof_workloads::{Benchmark, Framework, WorkloadId};

/// Replays `trace` through the live analyzer with a 5 % relative stopping
/// target and — when the stop fires — recomputes the claimed half-width
/// from scratch (two-pass, same no-fpc formula) over exactly the units
/// seen at stop. Returns `(units_at_stop, stopped_early, sound)`: an
/// early stop is *sound* when the recomputed half-width really meets the
/// claimed target, which is the estimator-honesty claim the live stopping
/// rule makes.
fn live_stop_soundness(base: SimProfConfig, trace: &ProfileTrace, z: f64) -> (usize, bool, bool) {
    let target_rel_err = 0.05;
    let cfg = SimProfConfig {
        live: Some(LiveConfig { target_rel_err, z, ..Default::default() }),
        ..base
    };
    let profiler = simprof_profiler::ProfilerConfig {
        unit_instrs: trace.unit_instrs,
        snapshot_instrs: trace.snapshot_instrs,
        core: trace.core,
    };
    let mut live = LiveAnalyzer::new(cfg, profiler);
    for u in &trace.units {
        if live.stop_requested() {
            break;
        }
        live.accept(u);
    }
    let report = live.report();
    if !report.stopped_early {
        return (report.units_profiled, false, true);
    }
    let n = report.units_profiled;
    let asg = live.live_assignments();
    let k = live.live_k();
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); k];
    for i in 0..n {
        let u = &trace.units[i];
        buckets[asg[i]].push(u.counters.cycles as f64 / u.counters.instructions as f64);
    }
    let mut se2 = 0.0;
    let mut sound = true;
    for b in &buckets {
        if b.is_empty() {
            continue;
        }
        if b.len() < 2 {
            sound = false; // the rule must never fire on a 1-unit phase
            continue;
        }
        let m = simprof_stats::mean(b);
        let var = b.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (b.len() - 1) as f64;
        let w = b.len() as f64 / n as f64;
        se2 += w * w * var / b.len() as f64;
    }
    let hw = z * se2.sqrt();
    let mean_cpi = simprof_stats::mean(&buckets.concat());
    sound = sound && hw <= target_rel_err * mean_cpi + 1e-12;
    (n, true, sound)
}

struct Args {
    reps: usize,
    points: usize,
    z: f64,
    seed: u64,
    quick: bool,
    min_coverage: Option<f64>,
    output: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv = apply_thread_flag(std::env::args().skip(1).collect())?;
    let mut args = Args {
        reps: 50,
        points: 20,
        z: 1.96,
        seed: 42,
        quick: false,
        min_coverage: None,
        output: None,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--reps" => {
                args.reps = value(&flag)?.parse().map_err(|e| format!("invalid --reps: {e}"))?
            }
            "--points" | "-n" => {
                args.points = value(&flag)?.parse().map_err(|e| format!("invalid --points: {e}"))?
            }
            "--z" => args.z = value(&flag)?.parse().map_err(|e| format!("invalid --z: {e}"))?,
            "--seed" => {
                args.seed = value(&flag)?.parse().map_err(|e| format!("invalid --seed: {e}"))?
            }
            "--min-coverage" => {
                args.min_coverage = Some(
                    value(&flag)?.parse().map_err(|e| format!("invalid --min-coverage: {e}"))?,
                )
            }
            "-o" | "--output" => args.output = Some(value(&flag)?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.reps == 0 || args.points == 0 || args.z <= 0.0 {
        return Err("need --reps ≥ 1, --points ≥ 1, --z > 0".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cfg = if args.quick { EvalConfig::tiny(args.seed) } else { EvalConfig::paper(args.seed) };
    let workloads: &[WorkloadId] = if args.quick {
        &[
            WorkloadId { benchmark: Benchmark::WordCount, framework: Framework::Spark },
            WorkloadId { benchmark: Benchmark::Grep, framework: Framework::Spark },
        ]
    } else {
        &[
            WorkloadId { benchmark: Benchmark::WordCount, framework: Framework::Spark },
            WorkloadId { benchmark: Benchmark::Grep, framework: Framework::Spark },
            WorkloadId { benchmark: Benchmark::Sort, framework: Framework::Hadoop },
            WorkloadId { benchmark: Benchmark::ConnectedComponents, framework: Framework::Spark },
        ]
    };

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut worst: Option<(String, f64)> = None;
    let mut live_rows = Vec::new();
    let mut live_unsound: Vec<String> = Vec::new();
    for (wi, id) in workloads.iter().enumerate() {
        let out = id.run_full(&cfg.workload);
        let analysis =
            SimProf::new(cfg.simprof).analyze(&out.trace).expect("workload trace is valid");
        let rep = coverage(
            &analysis,
            args.points,
            args.z,
            args.reps,
            split_seed(args.seed, 0xC0FE + wi as u64),
            FLAG_BELOW,
        );
        let flagged = rep.flagged_phases();
        rows.push(vec![
            id.label(),
            analysis.cpis.len().to_string(),
            analysis.k().to_string(),
            f3(rep.oracle_cpi),
            pct(rep.overall_coverage),
            f3(rep.mean_half_width),
            if flagged.is_empty() { "-".into() } else { format!("{flagged:?}") },
        ]);
        match &worst {
            Some((_, c)) if *c <= rep.overall_coverage => {}
            _ => worst = Some((id.label(), rep.overall_coverage)),
        }

        let (units_at_stop, stopped, sound) = live_stop_soundness(cfg.simprof, &out.trace, args.z);
        if !sound {
            live_unsound.push(id.label());
        }
        live_rows.push(vec![
            id.label(),
            format!("{units_at_stop}/{}", out.trace.units.len()),
            if stopped { "yes".into() } else { "no".into() },
            if sound { "ok".into() } else { "VIOLATED".into() },
        ]);

        records.push(serde_json::json!({
            "workload": id.label(),
            "units": analysis.cpis.len(),
            "phases": analysis.k(),
            "coverage": serde_json::to_value(&rep),
            "live_stop": serde_json::json!({
                "units_at_stop": units_at_stop,
                "units_full": out.trace.units.len(),
                "stopped_early": stopped,
                "sound": sound,
            }),
        }));
    }

    println!(
        "Extension — empirical CI coverage ({} reps of n = {}, z = {})",
        args.reps, args.points, args.z
    );
    println!(
        "{}",
        render_table(
            &["workload", "units", "phases", "oracle CPI", "coverage", "half-width", "flagged"],
            &rows
        )
    );
    println!(
        "Coverage is the fraction of seeded replications whose stated interval\n\
         contained the full-trace oracle; phases covering below {:.0}% are\n\
         flagged (the sd-floor guard makes intervals conservative, so honest\n\
         phases sit at or above the nominal level).",
        FLAG_BELOW * 100.0
    );
    let (worst_label, worst_cov) = worst.expect("at least one workload ran");
    println!("worst overall coverage: {} ({worst_label})", pct(worst_cov));

    println!(
        "\nLive stopping rule (5% relative target, z = {}): an early stop is\n\
         sound when the claimed half-width survives a from-scratch recomputation\n\
         over exactly the units seen at stop.",
        args.z
    );
    println!(
        "{}",
        render_table(&["workload", "units at stop", "stopped", "soundness"], &live_rows)
    );

    if let Some(path) = &args.output {
        let doc = serde_json::json!({
            "bench": "ext_coverage/ci_coverage",
            "reps": args.reps,
            "points": args.points,
            "z": args.z,
            "seed": args.seed,
            "quick": args.quick,
            "min_coverage": args.min_coverage,
            "worst_overall_coverage": worst_cov,
            "workloads": serde_json::Value::Array(records),
        });
        let text = serde_json::to_string_pretty(&doc).expect("record encodes");
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if let Some(bar) = args.min_coverage {
        if worst_cov < bar {
            eprintln!(
                "error: overall coverage {} ({worst_label}) below --min-coverage {bar}",
                pct(worst_cov)
            );
            std::process::exit(1);
        }
        if !live_unsound.is_empty() {
            eprintln!("error: live stopping rule violated its claimed target on {live_unsound:?}");
            std::process::exit(1);
        }
        println!("coverage smoke: every workload at or above {bar}; live stops sound");
    }
}
