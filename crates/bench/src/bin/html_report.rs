//! Generates a self-contained HTML evaluation report (`report.html`, or the
//! path given as the first argument) with SVG renditions of every figure —
//! the shareable artifact of `all_figures`.

use std::fmt::Write as _;

use simprof_bench::{figures, run_all_workloads, svg, EvalConfig};
use simprof_workloads::{Benchmark, Framework, WorkloadId};

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "report.html".into());
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let labels: Vec<String> = runs.iter().map(|r| r.label.clone()).collect();

    let mut html = String::from(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>SimProf evaluation</title>\
         <style>body{font-family:sans-serif;max-width:1000px;margin:24px auto;padding:0 12px}\
         h2{margin-top:36px;border-bottom:1px solid #ccc;padding-bottom:4px}\
         p.note{color:#555}</style></head><body>\
         <h1>SimProf — evaluation report</h1>\
         <p class=\"note\">Reproduction of the IPDPS'17 paper's figures on the \
         simulated substrate (seed 42). Shapes, not absolute values, are the \
         comparison targets; see EXPERIMENTS.md for the per-figure record.</p>",
    );

    // Fig. 6.
    let f6 = figures::fig06(&runs);
    let _ = write!(
        html,
        "<h2>Fig. 6 — Coefficient of variation of CPIs</h2>{}",
        svg::grouped_bars(
            "population / weighted / max CoV per workload",
            &labels,
            &[
                ("population", f6.iter().map(|r| r.population).collect()),
                ("weighted", f6.iter().map(|r| r.weighted).collect()),
                ("max", f6.iter().map(|r| r.max).collect()),
            ],
            "CoV of CPI",
        )
    );

    // Fig. 7.
    let f7 = figures::fig07(&runs, &cfg);
    let body = &f7[..f7.len() - 1];
    let _ = write!(
        html,
        "<h2>Fig. 7 — CPI sampling error (n = {})</h2>{}",
        cfg.fig7_sample_size,
        svg::grouped_bars(
            "sampling error by approach",
            &labels,
            &[
                ("SECOND", body.iter().map(|r| r.second * 100.0).collect()),
                ("SRS", body.iter().map(|r| r.srs * 100.0).collect()),
                ("CODE", body.iter().map(|r| r.code * 100.0).collect()),
                ("SimProf", body.iter().map(|r| r.simprof * 100.0).collect()),
            ],
            "error (%)",
        )
    );
    let avg = f7.last().expect("average row");
    let _ = write!(
        html,
        "<p class=\"note\">averages: SECOND {:.1}%, SRS {:.1}%, CODE {:.1}%, SimProf {:.1}% \
         (paper: 6.5 / 8.9 / 4.0 / 1.6).</p>",
        avg.second * 100.0,
        avg.srs * 100.0,
        avg.code * 100.0,
        avg.simprof * 100.0
    );

    // Fig. 8.
    let f8 = figures::fig08(&runs, &cfg);
    let body = &f8[..f8.len() - 1];
    let _ = write!(
        html,
        "<h2>Fig. 8 — Required sample size (99.7% CI)</h2>{}",
        svg::grouped_bars(
            "sampling units needed",
            &labels,
            &[
                ("SimProf 5%", body.iter().map(|r| r.simprof_5pct as f64).collect()),
                ("SimProf 2%", body.iter().map(|r| r.simprof_2pct as f64).collect()),
                ("SECOND", body.iter().map(|r| r.second_units as f64).collect()),
            ],
            "sampling units",
        )
    );

    // Fig. 9.
    let f9 = figures::fig09(&runs);
    let _ = write!(
        html,
        "<h2>Fig. 9 — Number of phases</h2>{}",
        svg::grouped_bars(
            "phases chosen by the silhouette rule",
            &labels,
            &[("phases", f9.iter().map(|r| r.phases as f64).collect())],
            "phases",
        )
    );

    // Fig. 10.
    let f10 = figures::fig10(&runs);
    let _ = write!(
        html,
        "<h2>Fig. 10 — Phase type distribution</h2>{}",
        svg::grouped_bars(
            "share of sampling units by dominant phase type",
            &labels,
            &[
                ("map", f10.iter().map(|r| r.map * 100.0).collect()),
                ("reduce", f10.iter().map(|r| r.reduce * 100.0).collect()),
                ("sort", f10.iter().map(|r| r.sort * 100.0).collect()),
                ("io", f10.iter().map(|r| r.io * 100.0).collect()),
            ],
            "share (%)",
        )
    );

    // Fig. 11.
    let cc_sp = runs.iter().find(|r| r.label == "cc_sp").expect("cc_sp");
    let f11 = figures::fig11(cc_sp, 20, cfg.simprof.seed);
    let phase_labels: Vec<String> = f11.iter().map(|r| format!("phase {}", r.phase)).collect();
    let _ = write!(
        html,
        "<h2>Fig. 11 — cc_sp optimal allocation (n = 20)</h2>{}",
        svg::grouped_bars(
            "sample-size ratio follows weight × CPI variance",
            &phase_labels,
            &[
                ("sample ratio", f11.iter().map(|r| r.sample_size_ratio).collect()),
                ("CoV of CPI", f11.iter().map(|r| r.cov).collect()),
                ("weight", f11.iter().map(|r| r.weight).collect()),
            ],
            "ratio",
        )
    );

    // Figs. 12–13.
    let sens = figures::fig12_13(&cfg, 20);
    let sens_labels: Vec<String> = sens.iter().map(|r| r.label.clone()).collect();
    let _ = write!(
        html,
        "<h2>Figs. 12–13 — Input sensitivity</h2>{}{}",
        svg::grouped_bars(
            "simulation points in input-sensitive phases (complement = reduction)",
            &sens_labels,
            &[(
                "sensitive points",
                sens.iter().map(|r| r.sensitive_point_fraction * 100.0).collect()
            )],
            "share (%)",
        ),
        svg::grouped_bars(
            "input-sensitive vs -insensitive phases",
            &sens_labels,
            &[
                ("sensitive", sens.iter().map(|r| r.sensitive_phases as f64).collect()),
                ("insensitive", sens.iter().map(|r| r.insensitive_phases as f64).collect()),
            ],
            "phases",
        )
    );

    // Figs. 14–15.
    for (fig, framework, label) in
        [(14, Framework::Spark, "wc_sp"), (15, Framework::Hadoop, "wc_hp")]
    {
        let run = runs
            .iter()
            .find(|r| r.id == WorkloadId { benchmark: Benchmark::WordCount, framework })
            .expect("wordcount run");
        let pts = figures::fig14_15(run);
        let cpis: Vec<f64> = pts.iter().map(|p| p.cpi).collect();
        let phases: Vec<usize> = pts.iter().map(|p| p.phase).collect();
        let _ = write!(
            html,
            "<h2>Fig. {fig} — WordCount phase structure ({label})</h2>{}",
            svg::phase_scatter(
                "unit CPI (dots) and phase id (line), units sorted by phase",
                &cpis,
                &phases
            )
        );
    }

    html.push_str("</body></html>");
    std::fs::write(&out_path, &html).expect("write report");
    println!("wrote {out_path} ({} bytes)", html.len());
}
