//! Regenerates Fig. 6: coefficient of variation of CPIs (population /
//! weighted / max) for every workload.

use simprof_bench::report::{f3, render_table};
use simprof_bench::{figures, run_all_workloads, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let rows: Vec<Vec<String>> = figures::fig06(&runs)
        .into_iter()
        .map(|r| vec![r.label, f3(r.population), f3(r.weighted), f3(r.max)])
        .collect();
    println!("Fig. 6 — Coefficient of variation of CPIs");
    println!("{}", render_table(&["workload", "population", "weighted", "max"], &rows));
    println!("paper property: weighted CoV < population CoV for every workload");
}
