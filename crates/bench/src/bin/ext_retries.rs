//! Extension experiment: robustness under task retries / speculative
//! execution.
//!
//! Data-analytic frameworks re-execute failed or straggling tasks (paper
//! §I: they "provide reliability to tolerate node failures"). A retried
//! task repeats its phase behaviour at an unexpected time — more of the
//! paper's "phase interleaving" noise. This experiment injects retries at
//! increasing rates and checks that phase formation and the stratified
//! estimate stay stable.

use simprof_bench::report::{f3, pct, render_table};
use simprof_bench::EvalConfig;
use simprof_core::{relative_error, SimProf};
use simprof_engine::{inject_task_retries, MethodRegistry, Scheduler};
use simprof_profiler::SamplingManager;
use simprof_sim::Machine;
use simprof_workloads::{Benchmark, Framework, WorkloadId};

fn main() {
    let cfg = EvalConfig::paper(42);
    // More tasks than the default matrix so retry rates are observable.
    let mut wl = cfg.workload;
    wl.partitions = 32;
    wl.reducers = 8;
    let id = WorkloadId { benchmark: Benchmark::WordCount, framework: Framework::Hadoop };
    let mut rows = Vec::new();
    for (label, ppm) in [("0%", 0u32), ("10%", 100_000), ("20%", 200_000), ("40%", 400_000)] {
        let mut machine = Machine::new(wl.machine);
        let mut registry = MethodRegistry::new();
        let mut job = id.benchmark.build(id.framework, &wl, &mut machine, &mut registry);
        let injected = inject_task_retries(&mut job, ppm, 99);
        let mut manager = SamplingManager::new(wl.profiler);
        Scheduler::new(wl.sched).run(&mut machine, &job, &mut manager);
        let trace = manager.finish();
        let analysis = SimProf::new(cfg.simprof).analyze(&trace).expect("workload trace is valid");
        let oracle = analysis.oracle_cpi();
        let reps = 20u64;
        let mut err = 0.0;
        for rep in 0..reps {
            let pts = analysis.select_points(20, 800 + rep);
            err += relative_error(analysis.estimate(&pts, 3.0).mean_cpi, oracle);
        }
        rows.push(vec![
            label.to_string(),
            injected.to_string(),
            trace.units.len().to_string(),
            f3(oracle),
            analysis.k().to_string(),
            f3(analysis.cov.weighted),
            pct(err / reps as f64),
        ]);
    }
    println!("Extension — robustness under task retries (wc_hp)");
    println!(
        "{}",
        render_table(
            &["retry rate", "retries", "units", "CPI", "phases", "w.CoV", "SimProf err (n=20)"],
            &rows
        )
    );
    println!(
        "Retried tasks repeat their phases at unexpected times; phase formation\n\
         absorbs them (same call stacks → same phase) and the stratified\n\
         estimate stays within its usual error band."
    );
}
