//! Regenerates Fig. 12: percentage of simulation points in input-sensitive
//! phases (the reference-input sample size; paper: 33.7 % average
//! reduction).

use simprof_bench::report::{pct, render_table};
use simprof_bench::{figures, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let rows_data = figures::fig12_13(&cfg, 20);
    let mut reduction_sum = 0.0;
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            reduction_sum += 1.0 - r.sensitive_point_fraction;
            vec![
                r.label.clone(),
                pct(r.sensitive_point_fraction),
                pct(1.0 - r.sensitive_point_fraction),
            ]
        })
        .collect();
    println!("Fig. 12 — Simulation points in input-sensitive phases (n = 20)");
    println!("{}", render_table(&["workload", "sensitive points", "reduction"], &rows));
    println!("average reduction: {}", pct(reduction_sum / rows_data.len() as f64));
}
