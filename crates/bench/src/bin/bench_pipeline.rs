//! Pipeline-throughput benchmark: the `choose_k` phase-formation sweep on a
//! synthetic clustered trace, optimized path vs the pre-optimization
//! sequential baseline.
//!
//! The baseline replicates the pipeline before the parallel substrate and
//! the distance cache landed: one worker thread, a fresh 4-restart cold
//! k-means per candidate k, and the naive `O(n²·d)` silhouette per
//! candidate. The optimized path is today's [`choose_k`]: shared distance
//! cache, warm-started sweep, all parallel regions live.
//!
//! ```text
//! cargo run --release -p simprof-bench --bin bench_pipeline -- \
//!     [--scale quick|default|large] [--units N] [--features D] [--kmax K] \
//!     [--seed S] [--threads N] [-o BENCH_pipeline.json] \
//!     [--report REPORT.json] [--events EVENTS.jsonl] \
//!     [--timeline TIMELINE.json] [--trace-stream BENCH_trace_stream.json] \
//!     [--mem-cap-mb N] [--chaos-smoke BENCH_chaos.json] [--live BENCH_live.json]
//! ```
//!
//! Every run times the full simulate→analyze hot path in four phases —
//! **synthesize** (trace generation), **simulate** (a real engine run with
//! the parallel per-slot machine simulation, replayed at 1 thread to prove
//! the trace bytes are identical), **cluster** (explicit [`DistCache`] build
//! plus [`choose_k_with_cache`], with a 1-thread replay proving the
//! assignments are identical), and **sampling** (the Eq. 1 allocator) — and
//! records the per-phase wall-clocks in the JSON output, which the
//! `perf_gate` bin compares against the committed canonical record in CI.
//!
//! `--scale large` additionally streams a 1,000,000-unit synthetic trace
//! straight into the chunked on-disk format (never materialized in memory)
//! and analyzes it with the two-pass streaming pipeline in mini-batch
//! phase-formation mode (`SimProfConfig::minibatch`) — the configuration
//! that makes million-unit traces feasible where the exact `n²` silhouette
//! cache would need terabytes. `--mem-cap-mb` bounds the analysis peak heap.
//!
//! With `-o`, writes a JSON record (units analyzed/sec, sweep wall-clock,
//! thread count, speedup, phase breakdowns) that CI uploads as the
//! `BENCH_pipeline.json` artifact to track the perf trajectory. With
//! `--report`, the optimized run executes under an observability session
//! and writes the versioned run report (span tree, metrics, Eq. 1
//! allocation table), which CI schema-checks with the `report_check` bin.
//! `--events` streams the structured JSONL event log while the bench runs
//! and `--timeline` converts the finished span tree to Chrome-trace JSON;
//! either implies a session, and `report_check` validates both formats too.
//!
//! With `--trace-stream`, additionally runs the streamed-vs-batch memory
//! comparison: a heavy synthetic trace is written in the chunked
//! `simprof-trace` format, analyzed once fully materialized and once
//! streamed chunk-by-chunk from disk, and the real peak heap of each path
//! (measured by `simprof-obs`'s tracking allocator, installed here as the
//! global allocator) is emitted as a JSON record. The two analyses must be
//! bit-identical or the bench exits non-zero; `--mem-cap-mb` additionally
//! fails the run when the *streamed* peak exceeds the cap (CI's large-trace
//! memory smoke).
//!
//! With `--chaos-smoke`, runs the trace-durability smoke: a chunked trace
//! is written through seeded fault-injecting I/O (`simprof-trace`'s
//! [`ChaosWriter`]) to prove the writer's retry path reproduces the fault-free
//! bytes exactly, then the sealed trace is truncated and bit-flipped at
//! seeded positions and salvage-scanned — every recovered unit must match
//! the original trace and the unit count must agree with the
//! [`SalvageReport`](simprof_trace::SalvageReport); repaired files must
//! re-read as clean. Violations exit non-zero; the JSON record is CI's
//! `BENCH_chaos.json` artifact.

use std::time::Instant;

use rand::RngExt;
use simprof_bench::apply_thread_flag;
use simprof_core::{LiveAnalyzer, LiveConfig, MinibatchPhases, SimProf, SimProfConfig};
use simprof_engine::{FaultPlan, MethodId};
use simprof_obs::TrackingAllocator;
use simprof_profiler::{ProfileTrace, ProfilerConfig, SamplingUnit, UnitSink};
use simprof_sim::{Counters, MachineConfig};
use simprof_stats::{
    choose_k, choose_k_with_cache, kmeans, optimal_allocation, seeded, silhouette_score, stddev,
    DistCache, KMeans, Matrix, StratumStats,
};
use simprof_trace::{
    read_trace, salvage_bytes, ChaosPlan, ChaosWriter, RetryPolicy, TraceMeta, TraceReader,
    TraceWriter,
};
use simprof_workloads::{Benchmark, Framework, WorkloadConfig};

/// Every allocation in this binary goes through the tracking allocator so
/// the `--trace-stream` comparison reports real peak heap, not estimates.
#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Benchmark scale preset. `Quick` shrinks everything for CI smoke runs,
/// `Default` is the canonical 2000×100 sweep the perf trajectory tracks,
/// and `Large` adds the streamed 1M-unit mini-batch analysis on top of the
/// default sweep.
#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Quick,
    Default,
    Large,
}

impl Scale {
    fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Large => "large",
        }
    }
}

struct Args {
    units: usize,
    features: usize,
    k_max: usize,
    seed: u64,
    scale: Scale,
    output: Option<String>,
    report: Option<String>,
    events: Option<String>,
    timeline: Option<String>,
    trace_stream: Option<String>,
    mem_cap_mb: Option<usize>,
    chaos_smoke: Option<String>,
    live: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv = apply_thread_flag(std::env::args().skip(1).collect())?;
    let mut args = Args {
        units: 2000,
        features: 100,
        k_max: 20,
        seed: 42,
        scale: Scale::Default,
        output: None,
        report: None,
        events: None,
        timeline: None,
        trace_stream: None,
        mem_cap_mb: None,
        chaos_smoke: None,
        live: None,
    };
    let quick = |args: &mut Args| {
        args.units = 400;
        args.features = 40;
        args.k_max = 10;
        args.scale = Scale::Quick;
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--quick" => quick(&mut args),
            "--scale" => match value(&flag)?.as_str() {
                "quick" => quick(&mut args),
                "default" => args.scale = Scale::Default,
                "large" => args.scale = Scale::Large,
                other => return Err(format!("unknown --scale `{other}`")),
            },
            "--units" => {
                args.units = value(&flag)?.parse().map_err(|e| format!("invalid --units: {e}"))?
            }
            "--features" => {
                args.features =
                    value(&flag)?.parse().map_err(|e| format!("invalid --features: {e}"))?
            }
            "--kmax" => {
                args.k_max = value(&flag)?.parse().map_err(|e| format!("invalid --kmax: {e}"))?
            }
            "--seed" => {
                args.seed = value(&flag)?.parse().map_err(|e| format!("invalid --seed: {e}"))?
            }
            "-o" | "--output" => args.output = Some(value(&flag)?),
            "--report" => args.report = Some(value(&flag)?),
            "--events" => args.events = Some(value(&flag)?),
            "--timeline" => args.timeline = Some(value(&flag)?),
            "--trace-stream" => args.trace_stream = Some(value(&flag)?),
            "--mem-cap-mb" => {
                args.mem_cap_mb =
                    Some(value(&flag)?.parse().map_err(|e| format!("invalid --mem-cap-mb: {e}"))?)
            }
            "--chaos-smoke" => args.chaos_smoke = Some(value(&flag)?),
            "--live" => args.live = Some(value(&flag)?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.units < 3 || args.features == 0 || args.k_max < 2 {
        return Err("need --units ≥ 3, --features ≥ 1, --kmax ≥ 2".into());
    }
    Ok(args)
}

/// A synthetic phase-structured trace: 6 latent behaviours, each a distinct
/// sparse method signature, plus per-unit jitter — the shape `form_phases`
/// sees after feature selection.
fn synthetic_trace(units: usize, features: usize, seed: u64) -> Matrix {
    const BEHAVIOURS: usize = 6;
    let mut rng = seeded(seed);
    let mut rows = Vec::with_capacity(units);
    for i in 0..units {
        let b = i % BEHAVIOURS;
        let mut row = vec![0.0f64; features];
        for (j, v) in row.iter_mut().enumerate() {
            // Behaviour b is loud on its own band of features, quiet elsewhere.
            let base = if j % BEHAVIOURS == b { 8.0 } else { 0.5 };
            *v = base + rng.random::<f64>() * 0.6;
        }
        rows.push(row);
    }
    Matrix::from_rows(&rows)
}

/// The pre-PR sweep: cold 4-restart k-means + naive silhouette per k,
/// sequential (the caller pins the worker count to 1 around this).
fn baseline_sweep(data: &Matrix, k_max: usize, seed: u64) -> (usize, Vec<(usize, f64)>) {
    let scores: Vec<(usize, f64)> = (2..=k_max.min(data.rows()))
        .map(|k| {
            let r = kmeans(data, KMeans::new(k, seed));
            (k, silhouette_score(data, &r.assignments))
        })
        .collect();
    let best = scores.iter().map(|&(_, s)| s).fold(f64::NEG_INFINITY, f64::max);
    let chosen = scores.iter().find(|&&(_, s)| s >= 0.9 * best).map_or(1, |&(k, _)| k);
    (chosen, scores)
}

/// Scale knobs for the streamed-vs-batch trace comparison. The point is a
/// trace whose *units* are heavy (dense histograms, many slices) at a
/// modest unit count — per-unit memory is what the streaming path saves,
/// while the `choose_k` distance cache (n²·8 B) is paid by both paths.
struct TraceScale {
    units: usize,
    hist_entries: usize,
    slices: usize,
    universe: usize,
    chunk_units: usize,
}

impl TraceScale {
    fn pick(quick: bool) -> Self {
        if quick {
            Self { units: 320, hist_entries: 1200, slices: 250, universe: 12000, chunk_units: 32 }
        } else {
            Self { units: 900, hist_entries: 1400, slices: 300, universe: 16000, chunk_units: 64 }
        }
    }
}

/// A heavy synthetic profile: 6 latent behaviours over a large method
/// universe, with per-unit cycles correlated to the behaviour so feature
/// selection has real signal. Histograms are sorted by method id, as the
/// profiler emits them.
fn heavy_trace(scale: &TraceScale, seed: u64) -> ProfileTrace {
    const BEHAVIOURS: u64 = 6;
    const SNAPSHOTS: u32 = 512;
    const UNIT_INSTRS: u64 = 1_000_000;
    let mut rng = seeded(seed);
    let stride = (scale.universe / scale.hist_entries).max(1);
    let units = (0..scale.units as u64)
        .map(|i| {
            let b = i % BEHAVIOURS;
            let histogram: Vec<(MethodId, u32)> = (0..scale.hist_entries)
                .map(|e| {
                    // Offsets below `stride` keep ids strictly increasing.
                    let m = e * stride + (i as usize + e) % stride;
                    let loud = m as u64 % BEHAVIOURS == b;
                    let count = if loud {
                        200 + (rng.random::<u64>() % 56) as u32
                    } else {
                        1 + (rng.random::<u64>() % 9) as u32
                    };
                    (MethodId(m as u32), count.min(SNAPSHOTS))
                })
                .collect();
            let cycles = UNIT_INSTRS * (10 + b * 3) / 10 + rng.random::<u64>() % (UNIT_INSTRS / 20);
            let slices = (0..scale.slices as u64)
                .map(|s| {
                    let instrs = UNIT_INSTRS / scale.slices as u64;
                    (instrs, instrs * (10 + (b + s) % BEHAVIOURS) / 10)
                })
                .collect();
            SamplingUnit {
                id: i,
                histogram,
                snapshots: SNAPSHOTS,
                counters: Counters { instructions: UNIT_INSTRS, cycles, ..Counters::default() },
                slices,
                truncated: false,
                dropped_snapshots: 0,
            }
        })
        .collect();
    ProfileTrace { unit_instrs: UNIT_INSTRS, snapshot_instrs: UNIT_INSTRS / 1000, core: 0, units }
}

/// Streamed-vs-batch comparison: write a heavy trace in the chunked
/// format, analyze it fully materialized and then streamed from disk, and
/// report the real peak heap of each path. Errors on any analysis
/// divergence; the caller enforces `--mem-cap-mb`.
fn trace_stream_bench(args: &Args, out_path: &str) -> Result<(), String> {
    let scale = TraceScale::pick(args.scale == Scale::Quick);
    let trace = heavy_trace(&scale, args.seed);
    let n = trace.units.len();
    let file = std::env::temp_dir().join(format!("simprof_bench_trace_{}.sptrc", args.seed));
    let file = file.to_str().ok_or("temp path is not UTF-8")?.to_owned();

    let meta = TraceMeta {
        label: "bench_synthetic".into(),
        seed: args.seed,
        scale: if args.scale == Scale::Quick { "quick".into() } else { "full".into() },
        unit_instrs: trace.unit_instrs,
        snapshot_instrs: trace.snapshot_instrs,
        core: trace.core,
    };
    let registry = simprof_engine::MethodRegistry::default();
    let mut writer = TraceWriter::create(&file, &meta)?.with_chunk_units(scale.chunk_units);
    for unit in &trace.units {
        writer.push(unit);
    }
    let footer = writer.finish(&registry)?;
    drop(trace);
    let file_bytes = std::fs::metadata(&file).map_err(|e| format!("stat {file}: {e}"))?.len();

    let cleanup = |r: Result<(serde_json::Value, usize), String>| {
        let _ = std::fs::remove_file(&file);
        r
    };
    let (record, streamed_peak) = cleanup((|| {
        let sp = SimProf::default();

        // Batch: materialize the whole trace, then analyze in memory.
        let batch_base = simprof_obs::current_alloc_bytes();
        simprof_obs::reset_peak();
        let t0 = Instant::now();
        let (materialized, _) = read_trace(&file)?;
        let batch = sp.analyze(&materialized).map_err(|e| format!("batch analyze: {e}"))?;
        let batch_secs = t0.elapsed().as_secs_f64();
        let batch_peak = simprof_obs::peak_alloc_bytes().saturating_sub(batch_base);
        drop(materialized);

        // Streamed: two passes over the chunked file, one chunk in memory
        // at a time.
        let stream_base = simprof_obs::current_alloc_bytes();
        simprof_obs::reset_peak();
        let t1 = Instant::now();
        let mut reader = TraceReader::open(&file)?;
        let streamed =
            sp.analyze_stream(&mut reader).map_err(|e| format!("streamed analyze: {e}"))?;
        let streamed_secs = t1.elapsed().as_secs_f64();
        let streamed_peak = simprof_obs::peak_alloc_bytes().saturating_sub(stream_base);
        let _ = reader.rewind();

        if batch.cpis != streamed.cpis
            || batch.model.assignments != streamed.model.assignments
            || batch.model.space != streamed.model.space
            || batch.stats != streamed.stats
        {
            return Err("streamed analysis diverged from batch analysis".into());
        }

        let universe = footer.method_universe;
        simprof_obs::gauge_set("mem.peak_alloc_bytes", batch_peak.max(streamed_peak) as f64);
        println!(
            "trace stream: {n} units × {} hist entries, universe {universe}",
            scale.hist_entries
        );
        println!("  file: {:.1} MiB, chunk = {} units", file_bytes as f64 / MIB, scale.chunk_units);
        println!("  batch:    {batch_secs:>7.3} s, peak heap {:>7.1} MiB", batch_peak as f64 / MIB);
        println!(
            "  streamed: {streamed_secs:>7.3} s, peak heap {:>7.1} MiB",
            streamed_peak as f64 / MIB
        );
        println!(
            "  streamed/batch peak ratio: {:.2}  (dense matrix would be {:.1} MiB)",
            streamed_peak as f64 / batch_peak.max(1) as f64,
            (n * universe * 8) as f64 / MIB
        );

        let record = serde_json::json!({
            "bench": "trace_stream/streamed_vs_batch",
            "units": n,
            "hist_entries_per_unit": scale.hist_entries,
            "slices_per_unit": scale.slices,
            "method_universe": universe,
            "chunk_units": scale.chunk_units,
            "seed": args.seed,
            "trace_file_bytes": file_bytes,
            "batch_secs": batch_secs,
            "streamed_secs": streamed_secs,
            "peak_alloc_bytes_batch": batch_peak,
            "peak_alloc_bytes_streamed": streamed_peak,
            "stream_to_batch_peak_ratio": streamed_peak as f64 / batch_peak.max(1) as f64,
            // What pass 2 would cost without top-K selection: n × universe
            // doubles. Computed, never allocated.
            "dense_matrix_bytes": n * universe * 8,
            "bit_identical": true,
            "mem_cap_mb": args.mem_cap_mb,
        });
        Ok((record, streamed_peak))
    })())?;

    if let Some(cap) = args.mem_cap_mb {
        if streamed_peak as f64 > cap as f64 * MIB {
            return Err(format!(
                "streamed peak heap {:.1} MiB exceeds --mem-cap-mb {cap}",
                streamed_peak as f64 / MIB
            ));
        }
        println!("  memory smoke: streamed peak within {cap} MiB cap");
    }

    let text = serde_json::to_string_pretty(&record).expect("record encodes");
    std::fs::write(out_path, text).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

/// Splits `seed` into a derived position for chaos case `k` — the same
/// deterministic mixing discipline the chaos plan itself uses, so a chaos
/// smoke run is reproducible from `--seed` alone.
fn chaos_case_pos(seed: u64, salt: u64, k: u64, modulus: usize) -> usize {
    let mut x = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) as usize % modulus.max(1)
}

/// Checks one salvage result against the pristine trace: the report's unit
/// count must match what was actually returned, recovered ids must be
/// strictly increasing, and every recovered unit must be byte-for-byte the
/// unit the original trace holds under that id — salvage may lose damaged
/// chunks, it must never invent or alter a unit.
fn verify_salvage(
    s: &simprof_trace::Salvage,
    original: &ProfileTrace,
    case: &str,
) -> Result<(), String> {
    if s.units.len() as u64 != s.report.recovered_units {
        return Err(format!(
            "{case}: salvage returned {} units but reported {}",
            s.units.len(),
            s.report.recovered_units
        ));
    }
    let mut last: Option<u64> = None;
    for unit in &s.units {
        if last.is_some_and(|l| unit.id <= l) {
            return Err(format!("{case}: recovered unit ids not strictly increasing"));
        }
        last = Some(unit.id);
        match original.units.get(unit.id as usize) {
            Some(orig) if orig == unit => {}
            _ => return Err(format!("{case}: recovered unit {} differs from original", unit.id)),
        }
    }
    Ok(())
}

/// Trace-durability chaos smoke: transient-fault retry equivalence, then
/// salvage correctness over seeded truncations and bit flips. See the
/// module docs for the contract; any violation is an `Err` (→ non-zero
/// exit in `main`).
fn chaos_smoke(args: &Args, out_path: &str) -> Result<(), String> {
    use std::io::Cursor;

    let scale =
        TraceScale { units: 120, hist_entries: 40, slices: 12, universe: 600, chunk_units: 8 };
    let trace = heavy_trace(&scale, args.seed);
    let meta = TraceMeta {
        label: "bench_chaos".into(),
        seed: args.seed,
        scale: "chaos".into(),
        unit_instrs: trace.unit_instrs,
        snapshot_instrs: trace.snapshot_instrs,
        core: trace.core,
    };
    let registry = simprof_engine::MethodRegistry::default();

    // Fault-free reference bytes.
    let mut clean = TraceWriter::in_memory(&meta)?.with_chunk_units(scale.chunk_units);
    for u in &trace.units {
        clean.push(u);
    }
    clean.finish(&registry)?;
    let clean_bytes = clean.into_bytes();

    // Phase 1 — transient faults: a seeded 15 % error / 20 % short-write
    // storm on every write and flush. The writer's bounded retry rebuilds
    // each frame from its start, so the surviving bytes must be exactly
    // the fault-free bytes.
    let plan = ChaosPlan {
        write_error_ppm: 150_000,
        short_write_ppm: 200_000,
        flush_error_ppm: 150_000,
        ..ChaosPlan::none(args.seed)
    };
    let chaos = ChaosWriter::new(Cursor::new(Vec::new()), plan);
    let mut w = TraceWriter::from_writer(chaos, "<chaos>", &meta)?
        .with_chunk_units(scale.chunk_units)
        .with_retry(RetryPolicy { max_retries: 6, backoff_ms: 0 });
    for u in &trace.units {
        w.push(u);
    }
    w.finish(&registry)?;
    let retries = w.retries();
    let chaos_out = w.into_writer();
    let counts = chaos_out.counts();
    let chaos_bytes = chaos_out.into_inner().into_inner();
    if chaos_bytes != clean_bytes {
        return Err("chaos smoke: retried write diverged from fault-free bytes".into());
    }
    let injected = counts.write_errors + counts.short_writes + counts.flush_errors;
    println!(
        "chaos smoke: transient storm — {} write errors, {} short writes, {} flush errors \
         over {} writes; {} retries, output bit-identical",
        counts.write_errors, counts.short_writes, counts.flush_errors, counts.writes, retries
    );

    // Phase 2 — salvage over seeded truncations: cut the sealed trace at
    // derived offsets (plus the pathological 0/1/EOF-1 edges) and demand
    // every recovered unit matches the original, with the report agreeing.
    let mut truncation_cases = 0u64;
    let mut truncation_recovered = 0u64;
    let mut cuts: Vec<usize> =
        (0..24).map(|k| chaos_case_pos(args.seed, 0x7256_4341, k, clean_bytes.len())).collect();
    cuts.extend([0, 1, 7, 8, clean_bytes.len() - 1, clean_bytes.len()]);
    for t in cuts {
        let s = salvage_bytes(&clean_bytes[..t], "<truncated>")?;
        verify_salvage(&s, &trace, &format!("truncate@{t}"))?;
        if s.report.clean != (t == clean_bytes.len()) {
            return Err(format!("truncate@{t}: clean flag wrong ({})", s.report.clean));
        }
        truncation_cases += 1;
        truncation_recovered += s.report.recovered_units;
    }

    // Phase 3 — salvage over seeded bit flips: damage must cost at most
    // the chunk the flipped byte lives in, and a repair of the salvage
    // must re-read as a clean, sealed trace holding exactly those units.
    let mut flip_cases = 0u64;
    let mut flip_recovered = 0u64;
    for k in 0..16 {
        let pos = 8 + chaos_case_pos(args.seed, 0x464C_4950, k, clean_bytes.len() - 8);
        let bit = chaos_case_pos(args.seed, 0x4249_5453, k, 8) as u32;
        let mut damaged = clean_bytes.clone();
        damaged[pos] ^= 1 << bit;
        let s = salvage_bytes(&damaged, "<flipped>")?;
        verify_salvage(&s, &trace, &format!("flip@{pos}.{bit}"))?;
        flip_cases += 1;
        flip_recovered += s.report.recovered_units;

        let mut repair = TraceWriter::in_memory(&s.meta)?.with_chunk_units(scale.chunk_units);
        for u in &s.units {
            repair.push(u);
        }
        repair.finish(&s.footer.registry)?;
        let repaired = salvage_bytes(&repair.into_bytes(), "<repaired>")?;
        if !repaired.report.clean || repaired.units != s.units {
            return Err(format!("flip@{pos}.{bit}: repair did not round-trip clean"));
        }
    }
    println!(
        "chaos smoke: {truncation_cases} truncations ({truncation_recovered} units recovered), \
         {flip_cases} bit flips ({flip_recovered} units recovered), all verified against the \
         original trace"
    );

    let record = serde_json::json!({
        "bench": "trace_durability/chaos_smoke",
        "seed": args.seed,
        "units": trace.units.len(),
        "chunk_units": scale.chunk_units,
        "trace_bytes": clean_bytes.len(),
        "transient": serde_json::json!({
            "write_errors": counts.write_errors,
            "short_writes": counts.short_writes,
            "flush_errors": counts.flush_errors,
            "writes": counts.writes,
            "retries": retries,
            "faults_injected": injected,
            "bit_identical": true,
        }),
        "truncation_cases": truncation_cases,
        "truncation_units_recovered": truncation_recovered,
        "bit_flip_cases": flip_cases,
        "bit_flip_units_recovered": flip_recovered,
        "all_verified": true,
    });
    let text = serde_json::to_string_pretty(&record).expect("record encodes");
    std::fs::write(out_path, text).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

const MIB: f64 = 1024.0 * 1024.0;

/// `--live`: the live early-stopping benchmark. Profiles WordCount/Spark
/// once (full trace = oracle), then replays the unit stream through the
/// [`LiveAnalyzer`] with a 5 % relative stopping target, measuring how
/// much of the profiling budget the live stopping rule saves and whether
/// the live CI at stop still covers the full-trace oracle CPI. Also runs
/// the equivalence smoke: with stopping disabled, the live path's final
/// analysis must be bit-identical to the offline pipeline (the DESIGN.md
/// §16 contract); a violation exits non-zero via the caller.
fn live_bench(args: &Args, out_path: &str) -> Result<(), String> {
    let target_rel_err = 0.05;
    let cfg = if args.scale == Scale::Quick {
        WorkloadConfig::tiny(args.seed)
    } else {
        WorkloadConfig::paper(args.seed)
    };
    let trace = Benchmark::WordCount.run(Framework::Spark, &cfg);
    let oracle = trace.oracle_cpi();
    let units_full = trace.units.len();
    let profiler = ProfilerConfig {
        unit_instrs: trace.unit_instrs,
        snapshot_instrs: trace.snapshot_instrs,
        core: trace.core,
    };

    // Early-stopping replay: feed units until the analyzer raises its stop
    // latch, exactly as the sampling manager would.
    let stop_cfg = SimProfConfig {
        seed: args.seed,
        live: Some(LiveConfig { target_rel_err, z: 1.96, ..Default::default() }),
        ..SimProfConfig::default()
    };
    let t0 = Instant::now();
    let mut live = LiveAnalyzer::new(stop_cfg, profiler);
    for u in &trace.units {
        if live.stop_requested() {
            break;
        }
        live.accept(u);
    }
    let live_secs = t0.elapsed().as_secs_f64();
    let report = live.report();
    let (stopped_analysis, _) = live.finalize().map_err(|e| format!("live analyze: {e}"))?;
    let reduction = 1.0 - report.units_profiled as f64 / units_full.max(1) as f64;
    let hw = report.live_half_width.unwrap_or(f64::INFINITY);
    let oracle_within_live_ci = (report.live_mean - oracle).abs() <= hw;

    // Equivalence smoke: stopping disabled → bit-identical to offline.
    let eq_cfg = SimProfConfig { seed: args.seed, ..SimProfConfig::default() };
    let offline = SimProf::new(eq_cfg).analyze(&trace).map_err(|e| format!("offline: {e}"))?;
    let mut eq =
        LiveAnalyzer::new(SimProfConfig { live: Some(LiveConfig::default()), ..eq_cfg }, profiler);
    for u in &trace.units {
        eq.accept(u);
    }
    let (eq_analysis, eq_report) = eq.finalize().map_err(|e| format!("live analyze: {e}"))?;
    let bit_identical = eq_analysis.cpis == offline.cpis
        && eq_analysis.model.assignments == offline.model.assignments
        && eq_analysis.model.centers == offline.model.centers
        && eq_analysis.stats == offline.stats;
    if eq_report.stopped_early {
        return Err("live equivalence run stopped early with stopping disabled".into());
    }
    if !bit_identical {
        return Err("live analysis (stopping disabled) diverged from the offline pipeline".into());
    }

    println!(
        "live: {} of {units_full} units profiled before stop ({:.1}% saved), \
         {} live phases, {} re-formation(s)",
        report.units_profiled,
        reduction * 100.0,
        report.live_k,
        report.reformations
    );
    println!(
        "  live CI at stop: {:.4} ± {:.4} (target {:.1}% rel); oracle {oracle:.4} {}",
        report.live_mean,
        hw,
        target_rel_err * 100.0,
        if oracle_within_live_ci { "covered" } else { "NOT covered" }
    );
    println!("  equivalence smoke: stopping disabled → offline output bit-identical");

    let record = serde_json::json!({
        "bench": "live/early_stop",
        "workload": "wordcount/spark",
        "scale": args.scale.name(),
        "seed": args.seed,
        "target_rel_err": target_rel_err,
        "units_full": units_full,
        "units_at_stop": report.units_profiled,
        "budget_saved_frac": reduction,
        "stopped_early": report.stopped_early,
        "live_k": report.live_k,
        "reformations": report.reformations,
        "live_mean_cpi": report.live_mean,
        "live_half_width": report.live_half_width,
        "oracle_cpi": oracle,
        "oracle_within_live_ci": oracle_within_live_ci,
        "stopped_analysis_k": stopped_analysis.k(),
        "live_replay_secs": live_secs,
        "equivalence_bit_identical": bit_identical,
    });
    let text = serde_json::to_string_pretty(&record).expect("record encodes");
    std::fs::write(out_path, text).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

/// What the simulate phase measured: the timed engine run plus the
/// 1-thread replay's verdict on the parallel-merge contract.
struct SimulateOutcome {
    secs: f64,
    sim_units: usize,
    trace_bytes: usize,
    identical: bool,
}

/// Simulate phase: a full engine run — WordCount on the Spark-style runtime,
/// a 4-core machine, GC noise, and a chaotic non-speculative fault plan, so
/// the parallel per-slot machine simulation actually engages — timed at the
/// requested thread count, then replayed pinned to 1 thread. The serialized
/// profile traces of the two runs must be byte-identical (the scheduler's
/// deterministic-merge contract, DESIGN.md §15).
fn simulate_phase(seed: u64, threads: usize, quick: bool) -> SimulateOutcome {
    let _span = simprof_obs::span!("bench.simulate");
    let mut cfg = WorkloadConfig::tiny(seed);
    cfg.machine = MachineConfig::scaled(4);
    if !quick {
        cfg.text_bytes = 1 << 20;
        cfg.partitions = 8;
        cfg.reducers = 4;
    }
    cfg.sched.faults = FaultPlan { speculative: false, ..FaultPlan::uniform(60_000, seed) };
    let run = || {
        let trace = Benchmark::WordCount.run(Framework::Spark, &cfg);
        let units = trace.units.len();
        (serde_json::to_string(&trace).expect("trace serializes").into_bytes(), units)
    };
    let t = Instant::now();
    let (bytes, sim_units) = run();
    let secs = t.elapsed().as_secs_f64();
    rayon::set_threads(1);
    let (serial_bytes, _) = run();
    rayon::set_threads(threads);
    SimulateOutcome { secs, sim_units, trace_bytes: bytes.len(), identical: bytes == serial_bytes }
}

/// `--scale large`: stream a 1,000,000-unit synthetic trace straight into
/// the chunked on-disk format — units are generated and written one at a
/// time, never materialized as a whole — then analyze it with the two-pass
/// streaming pipeline in mini-batch phase-formation mode. Reports wall
/// clocks and the real peak heap of each side; `--mem-cap-mb` fails the run
/// if the analysis peak exceeds the cap.
fn large_scale_bench(args: &Args) -> Result<serde_json::Value, String> {
    const UNITS: u64 = 1_000_000;
    const UNIT_INSTRS: u64 = 100_000;
    const BEHAVIOURS: u64 = 6;
    const HIST: usize = 12;
    const UNIVERSE: usize = 4096;
    const SLICES: u64 = 2;
    const CHUNK_UNITS: usize = 8192;
    const SNAPSHOTS: u32 = 256;

    let file = std::env::temp_dir().join(format!("simprof_bench_large_{}.sptrc", args.seed));
    let file = file.to_str().ok_or("temp path is not UTF-8")?.to_owned();
    let meta = TraceMeta {
        label: "bench_large".into(),
        seed: args.seed,
        scale: "large".into(),
        unit_instrs: UNIT_INSTRS,
        snapshot_instrs: UNIT_INSTRS / u64::from(SNAPSHOTS),
        core: 0,
    };
    let registry = simprof_engine::MethodRegistry::default();

    let write_base = simprof_obs::current_alloc_bytes();
    simprof_obs::reset_peak();
    let t0 = Instant::now();
    let mut rng = seeded(args.seed);
    let mut writer = TraceWriter::create(&file, &meta)?.with_chunk_units(CHUNK_UNITS);
    let stride = UNIVERSE / HIST;
    for i in 0..UNITS {
        let b = i % BEHAVIOURS;
        let histogram: Vec<(MethodId, u32)> = (0..HIST)
            .map(|e| {
                let m = e * stride + (i as usize + e) % stride;
                let loud = m as u64 % BEHAVIOURS == b;
                let count = if loud {
                    180 + (rng.random::<u64>() % 60) as u32
                } else {
                    1 + (rng.random::<u64>() % 8) as u32
                };
                (MethodId(m as u32), count.min(SNAPSHOTS))
            })
            .collect();
        let cycles = UNIT_INSTRS * (10 + b * 3) / 10 + rng.random::<u64>() % (UNIT_INSTRS / 20);
        let slices = (0..SLICES)
            .map(|s| {
                let instrs = UNIT_INSTRS / SLICES;
                (instrs, instrs * (10 + (b + s) % BEHAVIOURS) / 10)
            })
            .collect();
        writer.push(&SamplingUnit {
            id: i,
            histogram,
            snapshots: SNAPSHOTS,
            counters: Counters { instructions: UNIT_INSTRS, cycles, ..Counters::default() },
            slices,
            truncated: false,
            dropped_snapshots: 0,
        });
    }
    let footer = writer.finish(&registry)?;
    let write_secs = t0.elapsed().as_secs_f64();
    let write_peak = simprof_obs::peak_alloc_bytes().saturating_sub(write_base);
    let file_bytes = std::fs::metadata(&file).map_err(|e| format!("stat {file}: {e}"))?.len();

    let minibatch = MinibatchPhases::default();
    let result: Result<_, String> = (|| {
        let sp = SimProf::new(SimProfConfig {
            top_k: 16,
            minibatch: Some(minibatch),
            ..SimProfConfig::default()
        });
        let analyze_base = simprof_obs::current_alloc_bytes();
        simprof_obs::reset_peak();
        let t1 = Instant::now();
        let mut reader = TraceReader::open(&file)?;
        let analysis =
            sp.analyze_stream(&mut reader).map_err(|e| format!("large-scale analyze: {e}"))?;
        let analyze_secs = t1.elapsed().as_secs_f64();
        let analyze_peak = simprof_obs::peak_alloc_bytes().saturating_sub(analyze_base);
        Ok((analysis, analyze_secs, analyze_peak))
    })();
    let _ = std::fs::remove_file(&file);
    let (analysis, analyze_secs, analyze_peak) = result?;

    println!(
        "large scale: {UNITS} units streamed, file {:.1} MiB, universe {}",
        file_bytes as f64 / MIB,
        footer.method_universe
    );
    println!("  write:   {write_secs:>8.3} s, peak heap {:>7.1} MiB", write_peak as f64 / MIB);
    println!(
        "  analyze: {analyze_secs:>8.3} s ({:>9.0} units/s), peak heap {:>7.1} MiB, k = {}",
        UNITS as f64 / analyze_secs.max(1e-12),
        analyze_peak as f64 / MIB,
        analysis.model.k()
    );
    if let Some(cap) = args.mem_cap_mb {
        if analyze_peak as f64 > cap as f64 * MIB {
            return Err(format!(
                "large-scale analysis peak heap {:.1} MiB exceeds --mem-cap-mb {cap}",
                analyze_peak as f64 / MIB
            ));
        }
        println!("  memory smoke: analysis peak within {cap} MiB cap");
    }

    Ok(serde_json::json!({
        "units": UNITS,
        "hist_entries_per_unit": HIST,
        "method_universe": footer.method_universe,
        "chunk_units": CHUNK_UNITS,
        "trace_file_bytes": file_bytes,
        "write_secs": write_secs,
        "analyze_secs": analyze_secs,
        "units_per_sec_analyze": UNITS as f64 / analyze_secs.max(1e-12),
        "chosen_k": analysis.model.k(),
        "phase_sizes": serde_json::to_value(&analysis.model.phase_sizes()),
        "peak_alloc_bytes_write": write_peak,
        "peak_alloc_bytes_analyze": analyze_peak,
        "minibatch": serde_json::json!({
            "sweep_units": minibatch.sweep_units,
            "batch_size": minibatch.batch_size,
        }),
        "mem_cap_mb": args.mem_cap_mb,
    }))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let threads = rayon::current_threads();
    // Observability stays disabled (and free) unless an obs output
    // (report, event log, or timeline) was requested.
    let wants_obs = args.report.is_some() || args.events.is_some() || args.timeline.is_some();
    let obs_ctx = wants_obs.then(simprof_obs::ObsContext::new);
    if let (Some(ctx), Some(path)) = (&obs_ctx, &args.events) {
        match simprof_obs::JsonlEventWriter::create(std::path::Path::new(path)) {
            Ok(sink) => ctx.install_sink(Box::new(sink)),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let _obs_installed = obs_ctx.as_ref().map(simprof_obs::ObsContext::install);
    let t_syn = Instant::now();
    let data = {
        let _span = simprof_obs::span!("bench.synthesize");
        synthetic_trace(args.units, args.features, args.seed)
    };
    let synthesize_secs = t_syn.elapsed().as_secs_f64();
    println!(
        "pipeline throughput: {} units × {} features, k ≤ {}, {} thread(s), scale {}",
        args.units,
        args.features,
        args.k_max,
        threads,
        args.scale.name()
    );

    // Simulate phase: a real engine run through the parallel per-slot
    // machine simulation, with a 1-thread replay proving the trace bytes
    // are identical at any thread count.
    let sim = simulate_phase(args.seed, threads, args.scale == Scale::Quick);
    println!(
        "  simulate: {:>8.3} s  ({} sampling units, {:.1} KiB trace, 1-vs-{} threads {})",
        sim.secs,
        sim.sim_units,
        sim.trace_bytes as f64 / 1024.0,
        threads,
        if sim.identical { "bit-identical" } else { "DIVERGED" }
    );
    if !sim.identical {
        eprintln!("error: parallel simulation diverged from the 1-thread run");
        std::process::exit(1);
    }

    // Pre-PR baseline: sequential + naive. Warm both paths once first so
    // neither timing pays first-touch costs.
    let _ = kmeans(&data, KMeans::new(2, args.seed));
    rayon::set_threads(1);
    let t0 = Instant::now();
    let (baseline_k, _) = baseline_sweep(&data, args.k_max, args.seed);
    let baseline_secs = t0.elapsed().as_secs_f64();
    rayon::set_threads(threads);

    // Cluster phase: explicit distance-cache build + cache-reusing sweep
    // (what `form_phases` does internally), timed as one phase.
    let sweep_base = simprof_obs::current_alloc_bytes();
    simprof_obs::reset_peak();
    let t1 = Instant::now();
    let (sel, cache_build_secs) = {
        let _span = simprof_obs::span!("bench.phase_formation");
        let tc = Instant::now();
        let cache = DistCache::build(&data);
        let cache_build_secs = tc.elapsed().as_secs_f64();
        (choose_k_with_cache(&data, &cache, args.k_max, 0.9, 0.25, args.seed), cache_build_secs)
    };
    let optimized_secs = t1.elapsed().as_secs_f64();
    let sweep_peak = simprof_obs::peak_alloc_bytes().saturating_sub(sweep_base);
    simprof_obs::gauge_set("mem.peak_alloc_bytes", sweep_peak as f64);

    // 1-thread replay of the full sweep: phase assignments must be
    // identical at any thread count (DESIGN.md §10).
    rayon::set_threads(1);
    let serial_sel = choose_k(&data, args.k_max, 0.9, 0.25, args.seed);
    rayon::set_threads(threads);
    let assignments_identical =
        serial_sel.k == sel.k && serial_sel.result.assignments == sel.result.assignments;
    if !assignments_identical {
        eprintln!("error: clustering diverged from the 1-thread run");
        std::process::exit(1);
    }

    // Synthetic sampling stage: treat each unit's feature-row mean as the
    // measured quantity and run the Eq. 1 allocator over the chosen phases,
    // so a bench run exercises (and reports on) all three pipeline stages.
    let t_samp = Instant::now();
    let (strata, allocation) = {
        let _span = simprof_obs::span!("bench.sampling");
        let mut by_phase: Vec<Vec<f64>> = vec![Vec::new(); sel.k.max(1)];
        for (i, &h) in sel.result.assignments.iter().enumerate() {
            let row = data.row(i);
            by_phase[h].push(row.iter().sum::<f64>() / row.len() as f64);
        }
        let strata: Vec<StratumStats> =
            by_phase.iter().map(|v| StratumStats { units: v.len(), stddev: stddev(v) }).collect();
        let allocation = optimal_allocation(50.min(args.units), &strata);
        (strata, allocation)
    };
    let sampling_secs = t_samp.elapsed().as_secs_f64();

    let speedup = baseline_secs / optimized_secs.max(1e-12);
    let ups_base = args.units as f64 / baseline_secs.max(1e-12);
    let ups_opt = args.units as f64 / optimized_secs.max(1e-12);
    println!("  baseline  (1 thread, naive):  {baseline_secs:>8.3} s  ({ups_base:>9.1} units/s)  k = {baseline_k}");
    println!("  optimized ({threads} thread(s), cached): {optimized_secs:>8.3} s  ({ups_opt:>9.1} units/s)  k = {}", sel.k);
    println!("  speedup: {speedup:.2}×  (assignments 1-vs-{threads} threads identical)");

    let large_scale = if args.scale == Scale::Large {
        match large_scale_bench(&args) {
            Ok(record) => record,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        serde_json::Value::Null
    };

    if let Some(path) = &args.output {
        let record = serde_json::json!({
            "bench": "pipeline_throughput/choose_k_sweep",
            "scale": args.scale.name(),
            "units": args.units,
            "features": args.features,
            "k_max": args.k_max,
            "seed": args.seed,
            "threads": threads,
            "baseline_sweep_secs": baseline_secs,
            "optimized_sweep_secs": optimized_secs,
            "units_per_sec_baseline": ups_base,
            "units_per_sec_optimized": ups_opt,
            "speedup": speedup,
            "chosen_k_baseline": baseline_k,
            "chosen_k_optimized": sel.k,
            "peak_alloc_bytes_sweep": sweep_peak,
            "phases": serde_json::json!({
                "synthesize_secs": synthesize_secs,
                "simulate_secs": sim.secs,
                "cluster_secs": optimized_secs,
                "sampling_secs": sampling_secs,
            }),
            "simulate": serde_json::json!({
                "benchmark": "wordcount/spark",
                "sim_units": sim.sim_units,
                "trace_bytes": sim.trace_bytes,
                "trace_bytes_identical_1_vs_n": sim.identical,
            }),
            "cluster": serde_json::json!({
                "cache_build_secs": cache_build_secs,
                "assignments_identical_1_vs_n": assignments_identical,
            }),
            "large_scale": large_scale,
        });
        let text = serde_json::to_string_pretty(&record).expect("record encodes");
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if let Some(ctx) = &obs_ctx {
        let total: usize = strata.iter().map(|s| s.units).sum();
        let rows: Vec<serde_json::Value> = strata
            .iter()
            .zip(&allocation)
            .enumerate()
            .map(|(h, (s, &n_h))| {
                serde_json::json!({
                    "phase": h,
                    "units": s.units,
                    "weight": s.units as f64 / total.max(1) as f64,
                    "stddev": s.stddev,
                    "allocated": n_h,
                })
            })
            .collect();
        let report = ctx
            .finish_report()
            .with_section(
                "config",
                serde_json::json!({
                    "units": args.units,
                    "features": args.features,
                    "k_max": args.k_max,
                    "seed": args.seed,
                    "threads": threads,
                }),
            )
            .with_section(
                "bench",
                serde_json::json!({
                    "baseline_sweep_secs": baseline_secs,
                    "optimized_sweep_secs": optimized_secs,
                    "speedup": speedup,
                }),
            )
            .with_section(
                "phases",
                serde_json::json!({
                    "chosen_k": sel.k,
                    "scores": serde_json::to_value(&sel.scores),
                }),
            )
            .with_section("allocation", serde_json::to_value(&rows));
        if let Some(path) = &args.report {
            if let Err(e) = std::fs::write(path, report.to_json_pretty()) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        if let Some(path) = &args.timeline {
            if let Err(e) = simprof_obs::write_chrome_trace(&report, std::path::Path::new(path)) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            println!("wrote {path} (chrome://tracing / Perfetto JSON)");
        }
        if let Some(path) = &args.events {
            println!(
                "wrote {path} (JSONL event log, schema v{})",
                simprof_obs::EVENT_SCHEMA_VERSION
            );
        }
    }

    if let Some(path) = &args.trace_stream {
        if let Err(e) = trace_stream_bench(&args, path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.chaos_smoke {
        if let Err(e) = chaos_smoke(&args, path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.live {
        if let Err(e) = live_bench(&args, path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
