//! Pipeline-throughput benchmark: the `choose_k` phase-formation sweep on a
//! synthetic clustered trace, optimized path vs the pre-optimization
//! sequential baseline.
//!
//! The baseline replicates the pipeline before the parallel substrate and
//! the distance cache landed: one worker thread, a fresh 4-restart cold
//! k-means per candidate k, and the naive `O(n²·d)` silhouette per
//! candidate. The optimized path is today's [`choose_k`]: shared distance
//! cache, warm-started sweep, all parallel regions live.
//!
//! ```text
//! cargo run --release -p simprof-bench --bin bench_pipeline -- \
//!     [--quick] [--units N] [--features D] [--kmax K] [--seed S] \
//!     [--threads N] [-o BENCH_pipeline.json] [--report REPORT.json]
//! ```
//!
//! With `-o`, writes a JSON record (units analyzed/sec, sweep wall-clock,
//! thread count, speedup) that CI uploads as the `BENCH_pipeline.json`
//! artifact to track the perf trajectory. With `--report`, the optimized
//! run executes under an observability session and writes the versioned
//! run report (span tree, metrics, Eq. 1 allocation table), which CI
//! schema-checks with the `report_check` bin.

use std::time::Instant;

use rand::RngExt;
use simprof_bench::apply_thread_flag;
use simprof_stats::{
    choose_k, kmeans, optimal_allocation, seeded, silhouette_score, stddev, KMeans, Matrix,
    StratumStats,
};

struct Args {
    units: usize,
    features: usize,
    k_max: usize,
    seed: u64,
    output: Option<String>,
    report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv = apply_thread_flag(std::env::args().skip(1).collect())?;
    let mut args =
        Args { units: 2000, features: 100, k_max: 20, seed: 42, output: None, report: None };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--quick" => {
                args.units = 400;
                args.features = 40;
                args.k_max = 10;
            }
            "--units" => {
                args.units = value(&flag)?.parse().map_err(|e| format!("invalid --units: {e}"))?
            }
            "--features" => {
                args.features =
                    value(&flag)?.parse().map_err(|e| format!("invalid --features: {e}"))?
            }
            "--kmax" => {
                args.k_max = value(&flag)?.parse().map_err(|e| format!("invalid --kmax: {e}"))?
            }
            "--seed" => {
                args.seed = value(&flag)?.parse().map_err(|e| format!("invalid --seed: {e}"))?
            }
            "-o" | "--output" => args.output = Some(value(&flag)?),
            "--report" => args.report = Some(value(&flag)?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.units < 3 || args.features == 0 || args.k_max < 2 {
        return Err("need --units ≥ 3, --features ≥ 1, --kmax ≥ 2".into());
    }
    Ok(args)
}

/// A synthetic phase-structured trace: 6 latent behaviours, each a distinct
/// sparse method signature, plus per-unit jitter — the shape `form_phases`
/// sees after feature selection.
fn synthetic_trace(units: usize, features: usize, seed: u64) -> Matrix {
    const BEHAVIOURS: usize = 6;
    let mut rng = seeded(seed);
    let mut rows = Vec::with_capacity(units);
    for i in 0..units {
        let b = i % BEHAVIOURS;
        let mut row = vec![0.0f64; features];
        for (j, v) in row.iter_mut().enumerate() {
            // Behaviour b is loud on its own band of features, quiet elsewhere.
            let base = if j % BEHAVIOURS == b { 8.0 } else { 0.5 };
            *v = base + rng.random::<f64>() * 0.6;
        }
        rows.push(row);
    }
    Matrix::from_rows(&rows)
}

/// The pre-PR sweep: cold 4-restart k-means + naive silhouette per k,
/// sequential (the caller pins the worker count to 1 around this).
fn baseline_sweep(data: &Matrix, k_max: usize, seed: u64) -> (usize, Vec<(usize, f64)>) {
    let scores: Vec<(usize, f64)> = (2..=k_max.min(data.rows()))
        .map(|k| {
            let r = kmeans(data, KMeans::new(k, seed));
            (k, silhouette_score(data, &r.assignments))
        })
        .collect();
    let best = scores.iter().map(|&(_, s)| s).fold(f64::NEG_INFINITY, f64::max);
    let chosen = scores.iter().find(|&&(_, s)| s >= 0.9 * best).map_or(1, |&(k, _)| k);
    (chosen, scores)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let threads = rayon::current_threads();
    // Observability stays disabled (and free) unless a report was requested.
    let session = args.report.as_ref().map(|_| simprof_obs::Session::begin());
    let data = {
        let _span = simprof_obs::span!("bench.synthesize");
        synthetic_trace(args.units, args.features, args.seed)
    };
    println!(
        "pipeline throughput: {} units × {} features, k ≤ {}, {} thread(s)",
        args.units, args.features, args.k_max, threads
    );

    // Pre-PR baseline: sequential + naive. Warm both paths once first so
    // neither timing pays first-touch costs.
    let _ = kmeans(&data, KMeans::new(2, args.seed));
    rayon::set_threads(1);
    let t0 = Instant::now();
    let (baseline_k, _) = baseline_sweep(&data, args.k_max, args.seed);
    let baseline_secs = t0.elapsed().as_secs_f64();
    rayon::set_threads(threads);

    let t1 = Instant::now();
    let sel = {
        let _span = simprof_obs::span!("bench.phase_formation");
        choose_k(&data, args.k_max, 0.9, 0.25, args.seed)
    };
    let optimized_secs = t1.elapsed().as_secs_f64();

    // Synthetic sampling stage: treat each unit's feature-row mean as the
    // measured quantity and run the Eq. 1 allocator over the chosen phases,
    // so a bench run exercises (and reports on) all three pipeline stages.
    let (strata, allocation) = {
        let _span = simprof_obs::span!("bench.sampling");
        let mut by_phase: Vec<Vec<f64>> = vec![Vec::new(); sel.k.max(1)];
        for (i, &h) in sel.result.assignments.iter().enumerate() {
            let row = data.row(i);
            by_phase[h].push(row.iter().sum::<f64>() / row.len() as f64);
        }
        let strata: Vec<StratumStats> =
            by_phase.iter().map(|v| StratumStats { units: v.len(), stddev: stddev(v) }).collect();
        let allocation = optimal_allocation(50.min(args.units), &strata);
        (strata, allocation)
    };

    let speedup = baseline_secs / optimized_secs.max(1e-12);
    let ups_base = args.units as f64 / baseline_secs.max(1e-12);
    let ups_opt = args.units as f64 / optimized_secs.max(1e-12);
    println!("  baseline  (1 thread, naive):  {baseline_secs:>8.3} s  ({ups_base:>9.1} units/s)  k = {baseline_k}");
    println!("  optimized ({threads} thread(s), cached): {optimized_secs:>8.3} s  ({ups_opt:>9.1} units/s)  k = {}", sel.k);
    println!("  speedup: {speedup:.2}×");

    if let Some(path) = &args.output {
        let record = serde_json::json!({
            "bench": "pipeline_throughput/choose_k_sweep",
            "units": args.units,
            "features": args.features,
            "k_max": args.k_max,
            "seed": args.seed,
            "threads": threads,
            "baseline_sweep_secs": baseline_secs,
            "optimized_sweep_secs": optimized_secs,
            "units_per_sec_baseline": ups_base,
            "units_per_sec_optimized": ups_opt,
            "speedup": speedup,
            "chosen_k_baseline": baseline_k,
            "chosen_k_optimized": sel.k,
        });
        let text = serde_json::to_string_pretty(&record).expect("record encodes");
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if let (Some(session), Some(path)) = (session, args.report.as_ref()) {
        let total: usize = strata.iter().map(|s| s.units).sum();
        let rows: Vec<serde_json::Value> = strata
            .iter()
            .zip(&allocation)
            .enumerate()
            .map(|(h, (s, &n_h))| {
                serde_json::json!({
                    "phase": h,
                    "units": s.units,
                    "weight": s.units as f64 / total.max(1) as f64,
                    "stddev": s.stddev,
                    "allocated": n_h,
                })
            })
            .collect();
        let report = session
            .finish()
            .with_section(
                "config",
                serde_json::json!({
                    "units": args.units,
                    "features": args.features,
                    "k_max": args.k_max,
                    "seed": args.seed,
                    "threads": threads,
                }),
            )
            .with_section(
                "bench",
                serde_json::json!({
                    "baseline_sweep_secs": baseline_secs,
                    "optimized_sweep_secs": optimized_secs,
                    "speedup": speedup,
                }),
            )
            .with_section(
                "phases",
                serde_json::json!({
                    "chosen_k": sel.k,
                    "scores": serde_json::to_value(&sel.scores),
                }),
            )
            .with_section("allocation", serde_json::to_value(&rows));
        if let Err(e) = std::fs::write(path, report.to_json_pretty()) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
