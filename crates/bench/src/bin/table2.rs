//! Regenerates Table II: the synthesized Kronecker graph inputs of the
//! input-sensitivity study.

use simprof_bench::report::render_table;
use simprof_bench::{figures, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let rows: Vec<Vec<String>> = figures::table2(&cfg)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.kind.to_string(),
                r.role.to_string(),
                r.nodes.to_string(),
                r.edges.to_string(),
                r.max_degree.to_string(),
            ]
        })
        .collect();
    println!("Table II — Evaluated inputs (synthesized Kronecker graphs)");
    println!("{}", render_table(&["input", "type", "role", "nodes", "edges", "max deg"], &rows));
}
