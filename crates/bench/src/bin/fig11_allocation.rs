//! Regenerates Fig. 11: optimal allocation of simulation points across
//! cc_sp's phases (sample-size ratio vs CoV vs weight, sorted by weight).

use simprof_bench::report::{f3, render_table};
use simprof_bench::{figures, harness, EvalConfig};
use simprof_workloads::{Benchmark, Framework, WorkloadId};

fn main() {
    let cfg = EvalConfig::paper(42);
    let run = harness::run_workload(
        WorkloadId { benchmark: Benchmark::ConnectedComponents, framework: Framework::Spark },
        &cfg,
    );
    let rows: Vec<Vec<String>> = figures::fig11(&run, 20, cfg.simprof.seed)
        .into_iter()
        .map(|r| {
            vec![
                r.phase.to_string(),
                f3(r.sample_size_ratio),
                f3(r.cov),
                f3(r.weight),
                r.top_method,
            ]
        })
        .collect();
    println!("Fig. 11 — cc_sp sample-size ratio per phase (n = 20, optimal allocation)");
    println!(
        "{}",
        render_table(&["phase", "sample_ratio", "cov_cpi", "weight", "top method"], &rows)
    );
}
