//! Regenerates Fig. 8: required sample size of SimProf for 99.7 %-CI errors
//! of 5 % and 2 %, against the SECOND interval's unit count.

use simprof_bench::report::render_table;
use simprof_bench::{figures, run_all_workloads, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let rows: Vec<Vec<String>> = figures::fig08(&runs, &cfg)
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                r.simprof_5pct.to_string(),
                r.simprof_2pct.to_string(),
                r.second_units.to_string(),
            ]
        })
        .collect();
    println!("Fig. 8 — Required sample size (number of sampling units)");
    println!("{}", render_table(&["workload", "SimProf_0.05", "SimProf_0.02", "SECOND"], &rows));
}
