//! Debug probe: per-phase stats and top methods for one workload.

use simprof_bench::{harness, EvalConfig};
use simprof_workloads::{Benchmark, Framework, WorkloadId};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "wc_hp".into());
    let cfg = EvalConfig::paper(42);
    let id = WorkloadId::all()
        .into_iter()
        .find(|w| w.label() == label)
        .expect("workload label like wc_hp");
    let _ = (Benchmark::ALL, Framework::ALL);
    let run = harness::run_workload(id, &cfg);
    let a = &run.analysis;
    println!("{label}: {} units, oracle cpi {:.3}, k={}", a.cpis.len(), a.oracle_cpi(), a.k());
    println!(
        "k scores: {:?}",
        a.model.k_scores.iter().map(|&(k, s)| (k, (s * 100.0).round() / 100.0)).collect::<Vec<_>>()
    );
    for h in 0..a.k() {
        let s = &a.stats[h];
        let top = a.model.top_methods(h, 3);
        let names: Vec<String> = top
            .iter()
            .map(|&(m, w)| {
                let name = run.output.registry.name(simprof_engine::MethodId(m as u32));
                let short = name.rsplit('.').nth(1).unwrap_or(name);
                format!("{short}.{}={:.2}", name.rsplit('.').next().unwrap_or(""), w)
            })
            .collect();
        println!(
            "  phase {h}: n={:<4} w={:.3} mean={:.3} sd={:.3} cov={:.3}  {}",
            s.n,
            a.weights[h],
            s.mean,
            s.stddev,
            s.cov,
            names.join(", ")
        );
        // CPI series sample of this phase (first 40 members).
        let members: Vec<(usize, f64)> = a
            .model
            .assignments
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == h)
            .map(|(i, _)| (i, a.cpis[i]))
            .collect();
        let shown: Vec<String> =
            members.iter().take(30).map(|&(i, c)| format!("{i}:{c:.2}")).collect();
        println!("    cpis: {}", shown.join(" "));
        let mut extremes = members.clone();
        extremes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> =
            extremes.iter().take(8).map(|&(i, c)| format!("{i}:{c:.2}")).collect();
        println!("    max:  {}", top.join(" "));
    }
}
// (appended) -- nothing
