//! Extension experiment: cluster scale-out.
//!
//! Profiles every workload on 1-, 2- and 4-node clusters and reports how
//! phase structure and the sampling story change: cross-node shuffles raise
//! the IO share (the paper's §IV-D observation strengthens with scale), but
//! the profiled executor thread's phase structure — and therefore SimProf's
//! sampling budget — stays node-local.

use simprof_bench::report::{f3, pct, render_table};
use simprof_bench::EvalConfig;
use simprof_core::SimProf;
use simprof_workloads::{Benchmark, Framework, WorkloadConfig};

fn main() {
    let base = EvalConfig::paper(42);
    let mut rows = Vec::new();
    for (bench, fw, label) in [
        (Benchmark::WordCount, Framework::Hadoop, "wc_hp"),
        (Benchmark::Sort, Framework::Hadoop, "sort_hp"),
        (Benchmark::ConnectedComponents, Framework::Spark, "cc_sp"),
    ] {
        for nodes in [1usize, 2, 4] {
            let cfg = WorkloadConfig::cluster(42, nodes);
            let out = bench.run_full(fw, &cfg);
            let a =
                SimProf::new(base.simprof).analyze(&out.trace).expect("workload trace is valid");
            let stall: u64 = out.trace.units.iter().map(|u| u.counters.io_stall_cycles).sum();
            let cycles: u64 = out.trace.units.iter().map(|u| u.counters.cycles).sum();
            rows.push(vec![
                format!("{label} × {nodes}"),
                out.total_tasks.to_string(),
                out.trace.units.len().to_string(),
                f3(a.oracle_cpi()),
                pct(stall as f64 / cycles as f64),
                a.k().to_string(),
                f3(a.cov.weighted),
                a.required_size(3.0, 0.05).to_string(),
            ]);
        }
    }
    println!("Extension — cluster scale-out (per-node profiling)");
    println!(
        "{}",
        render_table(
            &["workload × nodes", "tasks", "units", "CPI", "io share", "phases", "w.CoV", "n@5%"],
            &rows
        )
    );
}
