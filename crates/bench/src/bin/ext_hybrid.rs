//! Extension experiment: SimProf × systematic sampling (the paper's stated
//! future work, §III-C).
//!
//! For each workload, select 20 simulation points with SimProf's stratified
//! sampler, then estimate CPI while simulating only every `stride`-th
//! intra-unit slice of each point (SMARTS-style systematic sampling nested
//! inside the point). Reports the CPI error and the detailed-simulation
//! instruction budget at stride 1 (full points), 2, 5, and 10.

use simprof_bench::report::{pct, render_table};
use simprof_bench::{run_all_workloads, EvalConfig};
use simprof_core::{estimate_hybrid, relative_error};
use simprof_stats::split_seed;

fn main() {
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let strides = [1usize, 2, 5, 10];
    let reps = 30u64;

    let mut rows = Vec::new();
    let mut err_sums = vec![0.0f64; strides.len()];
    let mut red_sums = vec![0.0f64; strides.len()];
    for r in &runs {
        let a = &r.analysis;
        let oracle = a.oracle_cpi();
        let mut cells = vec![r.label.clone()];
        for (si, &stride) in strides.iter().enumerate() {
            let mut err = 0.0;
            let mut reduction = 0.0;
            for rep in 0..reps {
                let pts = a.select_points(20, split_seed(42, 0x4871D + rep));
                let h = estimate_hybrid(&r.output.trace, &a.model.assignments, &pts, stride, 3.0);
                err += relative_error(h.mean_cpi, oracle);
                reduction += h.slice_reduction();
            }
            err /= reps as f64;
            reduction /= reps as f64;
            err_sums[si] += err;
            red_sums[si] += reduction;
            cells.push(format!("{} (-{})", pct(err), pct(reduction)));
        }
        rows.push(cells);
    }
    let mut avg = vec!["average".to_string()];
    for si in 0..strides.len() {
        avg.push(format!(
            "{} (-{})",
            pct(err_sums[si] / runs.len() as f64),
            pct(red_sums[si] / runs.len() as f64)
        ));
    }
    rows.push(avg);

    println!("Extension — SimProf × systematic sub-unit sampling (n = 20 points)");
    println!("cells: CPI error (simulation-budget reduction from slicing)\n");
    println!(
        "{}",
        render_table(&["workload", "stride 1 (full)", "stride 2", "stride 5", "stride 10"], &rows)
    );
    println!(
        "A stride of 10 simulates one snapshot-interval slice per point — \
         ~90% less detailed simulation per point on top of the stratified \
         selection, for the accuracy cost shown."
    );
}
