//! Perf-regression gate: compare a fresh `bench_pipeline` record against
//! the canonical record committed in-repo.
//!
//! ```text
//! perf_gate --canonical canonical/BENCH_pipeline.json --fresh BENCH_pipeline.json \
//!     [--trace-canonical canonical/BENCH_trace_stream.json --trace-fresh BENCH_trace_stream.json] \
//!     [--max-regress 0.25]
//! ```
//!
//! CI runners and dev boxes differ in absolute speed, so wall-clock seconds
//! are never compared directly. Every run of `bench_pipeline` times the
//! naive 1-thread sweep (`baseline_sweep_secs`) on the same machine in the
//! same process, so each phase is first normalized to that run's own
//! baseline: `phase_secs / baseline_sweep_secs` is a machine-free ratio.
//! The gate fails when a fresh normalized phase exceeds the canonical
//! normalized phase by more than `--max-regress` (default 25 %).
//!
//! Phases whose canonical wall-clock is under [`MIN_PHASE_SECS`] are
//! reported but not gated: a 2 ms phase regressing to 3 ms is timer noise,
//! not a regression.
//!
//! Correctness flags are gated unconditionally: the fresh record must show
//! bit-identical traces and phase assignments across thread counts, and the
//! chosen k must match the canonical record — a "speedup" that changes
//! results is a bug, not a win.

use std::process::ExitCode;

/// Canonical phases shorter than this are too noisy to gate.
const MIN_PHASE_SECS: f64 = 0.02;

/// Default allowed normalized regression (fraction over canonical).
const DEFAULT_MAX_REGRESS: f64 = 0.25;

struct Args {
    canonical: String,
    fresh: String,
    trace_canonical: Option<String>,
    trace_fresh: Option<String>,
    max_regress: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut canonical = None;
    let mut fresh = None;
    let mut trace_canonical = None;
    let mut trace_fresh = None;
    let mut max_regress = DEFAULT_MAX_REGRESS;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("{flag} requires a value"));
        match flag.as_str() {
            "--canonical" => canonical = Some(value()?),
            "--fresh" => fresh = Some(value()?),
            "--trace-canonical" => trace_canonical = Some(value()?),
            "--trace-fresh" => trace_fresh = Some(value()?),
            "--max-regress" => {
                max_regress =
                    value()?.parse().map_err(|e| format!("invalid --max-regress: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        canonical: canonical.ok_or("--canonical is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        trace_canonical,
        trace_fresh,
        max_regress,
    })
}

fn load(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Looks up a dotted path (`"phases.cluster_secs"`) as f64.
fn num(v: &serde_json::Value, path: &str) -> Result<f64, String> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = cur.get(seg).ok_or(format!("missing field `{path}`"))?;
    }
    cur.as_f64().ok_or(format!("field `{path}` is not a number"))
}

fn flag_true(v: &serde_json::Value, path: &str) -> Result<bool, String> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = cur.get(seg).ok_or(format!("missing field `{path}`"))?;
    }
    Ok(matches!(cur, serde_json::Value::Bool(true)))
}

/// The records must describe the same experiment, else ratios are apples
/// to oranges.
fn check_config_match(
    canon: &serde_json::Value,
    fresh: &serde_json::Value,
    fields: &[&str],
) -> Result<(), String> {
    for f in fields {
        let c = num(canon, f)?;
        let n = num(fresh, f)?;
        if c != n {
            return Err(format!("config mismatch on `{f}`: canonical {c} vs fresh {n}"));
        }
    }
    Ok(())
}

/// One gated comparison; returns the failure message when the phase
/// regressed past the budget.
fn gate_phase(
    label: &str,
    canon_secs: f64,
    fresh_secs: f64,
    canon_base: f64,
    fresh_base: f64,
    max_regress: f64,
) -> Option<String> {
    let canon_ratio = canon_secs / canon_base;
    let fresh_ratio = fresh_secs / fresh_base;
    let delta = fresh_ratio / canon_ratio - 1.0;
    let gated = canon_secs >= MIN_PHASE_SECS;
    println!(
        "  {label:<16} canonical {canon_secs:>8.3} s ({canon_ratio:>6.4}×base)  \
         fresh {fresh_secs:>8.3} s ({fresh_ratio:>6.4}×base)  delta {:+6.1}%{}",
        delta * 100.0,
        if gated { "" } else { "  [not gated: canonical below noise floor]" }
    );
    if gated && delta > max_regress {
        Some(format!(
            "phase `{label}` regressed {:.1}% normalized (budget {:.0}%)",
            delta * 100.0,
            max_regress * 100.0
        ))
    } else {
        None
    }
}

fn check_pipeline(args: &Args) -> Result<Vec<String>, String> {
    let canon = load(&args.canonical)?;
    let fresh = load(&args.fresh)?;
    check_config_match(&canon, &fresh, &["units", "features", "k_max", "seed", "threads"])?;

    let mut failures = Vec::new();

    // Correctness first: identity flags and the chosen k are absolute.
    for flag in ["simulate.trace_bytes_identical_1_vs_n", "cluster.assignments_identical_1_vs_n"] {
        if !flag_true(&fresh, flag)? {
            failures.push(format!("fresh record has `{flag}` = false"));
        }
    }
    let canon_k = num(&canon, "chosen_k_optimized")?;
    let fresh_k = num(&fresh, "chosen_k_optimized")?;
    if canon_k != fresh_k {
        failures.push(format!("chosen k drifted: canonical {canon_k} vs fresh {fresh_k}"));
    }

    let canon_base = num(&canon, "baseline_sweep_secs")?;
    let fresh_base = num(&fresh, "baseline_sweep_secs")?;
    if canon_base <= 0.0 || fresh_base <= 0.0 {
        return Err("baseline_sweep_secs must be positive in both records".into());
    }

    println!("pipeline phases (normalized to each run's own naive baseline):");
    for phase in ["synthesize_secs", "simulate_secs", "cluster_secs", "sampling_secs"] {
        let path = format!("phases.{phase}");
        failures.extend(gate_phase(
            phase,
            num(&canon, &path)?,
            num(&fresh, &path)?,
            canon_base,
            fresh_base,
            args.max_regress,
        ));
    }

    // End-to-end speedup is already self-normalized (baseline and optimized
    // sweep run back to back on the same machine), so gate it directly.
    let canon_speedup = num(&canon, "speedup")?;
    let fresh_speedup = num(&fresh, "speedup")?;
    println!(
        "  speedup          canonical {canon_speedup:>7.2}×          fresh {fresh_speedup:>7.2}×"
    );
    if fresh_speedup < canon_speedup * (1.0 - args.max_regress) {
        failures.push(format!(
            "end-to-end speedup fell to {fresh_speedup:.2}× (canonical {canon_speedup:.2}×, \
             budget -{:.0}%)",
            args.max_regress * 100.0
        ));
    }
    Ok(failures)
}

fn check_trace_stream(
    canonical: &str,
    fresh_path: &str,
    max_regress: f64,
) -> Result<Vec<String>, String> {
    let canon = load(canonical)?;
    let fresh = load(fresh_path)?;
    check_config_match(
        &canon,
        &fresh,
        &["units", "hist_entries_per_unit", "method_universe", "chunk_units", "seed"],
    )?;

    let mut failures = Vec::new();
    if !flag_true(&fresh, "bit_identical")? {
        failures.push("fresh trace-stream record has `bit_identical` = false".into());
    }

    // The in-run baseline here is the batch path: streamed/batch time and
    // peak-heap ratios are machine-free.
    println!("trace-stream (normalized to each run's own batch path):");
    failures.extend(gate_phase(
        "streamed_secs",
        num(&canon, "streamed_secs")?,
        num(&fresh, "streamed_secs")?,
        num(&canon, "batch_secs")?,
        num(&fresh, "batch_secs")?,
        max_regress,
    ));
    let canon_mem = num(&canon, "stream_to_batch_peak_ratio")?;
    let fresh_mem = num(&fresh, "stream_to_batch_peak_ratio")?;
    println!("  peak-heap ratio  canonical {canon_mem:>7.3}          fresh {fresh_mem:>7.3}");
    if fresh_mem > canon_mem * (1.0 + max_regress) {
        failures.push(format!(
            "streamed peak-heap ratio grew to {fresh_mem:.3} (canonical {canon_mem:.3}, \
             budget +{:.0}%)",
            max_regress * 100.0
        ));
    }
    Ok(failures)
}

fn run() -> Result<Vec<String>, String> {
    let args = parse_args()?;
    let mut failures = check_pipeline(&args)?;
    match (&args.trace_canonical, &args.trace_fresh) {
        (Some(c), Some(f)) => failures.extend(check_trace_stream(c, f, args.max_regress)?),
        (None, None) => {}
        _ => return Err("--trace-canonical and --trace-fresh must be given together".into()),
    }
    Ok(failures)
}

fn main() -> ExitCode {
    match run() {
        Ok(failures) if failures.is_empty() => {
            println!("perf gate: OK");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("perf gate FAIL: {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf gate error: {e}");
            ExitCode::FAILURE
        }
    }
}
