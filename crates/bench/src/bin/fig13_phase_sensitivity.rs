//! Regenerates Fig. 13: number of input-sensitive vs input-insensitive
//! phases per graph workload.

use simprof_bench::report::render_table;
use simprof_bench::{figures, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let rows: Vec<Vec<String>> = figures::fig12_13(&cfg, 20)
        .into_iter()
        .map(|r| vec![r.label, r.sensitive_phases.to_string(), r.insensitive_phases.to_string()])
        .collect();
    println!("Fig. 13 — Input-sensitive vs input-insensitive phases");
    println!("{}", render_table(&["workload", "sensitive", "insensitive"], &rows));
}
