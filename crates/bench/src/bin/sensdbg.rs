//! Debug probe: per-phase trimmed statistics of cc_sp across every Table II
//! reference input (what Algorithm 1 actually compares).

use simprof_bench::{harness, EvalConfig};
use simprof_core::{classify_units, trimmed_phase_stats};
use simprof_stats::split_seed;
use simprof_workloads::{Benchmark, Framework, GraphInput, Kronecker, WorkloadId};

fn main() {
    let cfg = EvalConfig::paper(42);
    let fw = if std::env::args().any(|a| a == "hp") { Framework::Hadoop } else { Framework::Spark };
    let bench = if std::env::args().any(|a| a == "rank") {
        Benchmark::PageRank
    } else {
        Benchmark::ConnectedComponents
    };
    let id = WorkloadId { benchmark: bench, framework: fw };
    let train = harness::run_workload(id, &cfg);
    let a = &train.analysis;
    println!("train {:?}_{:?}: k={} units={}", bench, fw, a.k(), a.cpis.len());

    let train_stats = trimmed_phase_stats(&a.cpis, &a.model.assignments, a.k());
    let mut ref_stats = Vec::new();
    for &input in GraphInput::ALL.iter().filter(|&&i| i != GraphInput::Google) {
        let g = Kronecker::for_input(input, cfg.workload.graph_scale, cfg.workload.graph_degree)
            .generate(split_seed(cfg.workload.seed, 0x6120 + input as u64));
        let r = bench.run_on_graph(fw, &cfg.workload, &g);
        let asg = classify_units(&a.model, &r.trace);
        ref_stats.push((input.label(), trimmed_phase_stats(&r.trace.cpis(), &asg, a.k())));
    }
    for h in 0..a.k() {
        let t = &train_stats[h];
        println!("phase {h}: w={:.2} train m={:.3} sd={:.3}", a.weights[h], t.mean, t.stddev);
        for (name, st) in &ref_stats {
            let dm = ((st[h].mean - t.mean) / t.mean * 100.0).abs();
            let ds = if t.stddev > 0.0 {
                ((st[h].stddev - t.stddev) / t.stddev * 100.0).abs()
            } else {
                0.0
            };
            println!(
                "    {name:<10} m={:.3} ({dm:>4.0}%)  sd={:.3} ({ds:>4.0}%)  n={}",
                st[h].mean, st[h].stddev, st[h].n
            );
        }
    }
}
