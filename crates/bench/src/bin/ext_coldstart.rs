//! Extension experiment: cold-start replay validation.
//!
//! The paper sizes sampling units at 100 M instructions "to avoid the
//! simulation start-up effect, e.g., cold cache" (§III-A). This experiment
//! closes the loop: it *replays* selected simulation points the way a
//! detailed simulator would — fast-forward to the point, start with cold
//! caches, optionally warm up for a prefix, then measure — and reports how
//! far the replayed CPI lands from the profiled (in-context) CPI as a
//! function of the warm-up length.
//!
//! Expectation (and the paper's implicit claim): with warm-up of about one
//! unit, the cold-start error becomes small relative to the sampling error.

use simprof_core::SimProf;
use simprof_workloads::{Benchmark, Framework, WorkloadId};

use simprof_bench::report::{pct, render_table};
use simprof_bench::EvalConfig;

fn main() {
    let cfg = EvalConfig::paper(42);
    let warmups = [0u64, 5_000, 25_000, 50_000, 100_000];
    let mut rows = Vec::new();
    let mut sums = vec![0.0; warmups.len()];
    let mut count = 0.0;

    let targets = [
        (Benchmark::WordCount, Framework::Spark, "wc_sp"),
        (Benchmark::WordCount, Framework::Hadoop, "wc_hp"),
        (Benchmark::ConnectedComponents, Framework::Spark, "cc_sp"),
        (Benchmark::Sort, Framework::Hadoop, "sort_hp"),
    ];
    for (bench, fw, label) in targets {
        let id = WorkloadId { benchmark: bench, framework: fw };
        let out = id.run_full(&cfg.workload);
        let analysis =
            SimProf::new(cfg.simprof).analyze(&out.trace).expect("workload trace is valid");
        let points = analysis.select_points(6, 7);
        let unit_instrs = out.trace.unit_instrs;

        let mut cells = vec![label.to_string()];
        for (wi, &warmup) in warmups.iter().enumerate() {
            let mut err = 0.0;
            let mut n = 0.0;
            for &unit in &points.points {
                // Skip the very first units — nothing to warm up from.
                if unit * unit_instrs < 100_000 {
                    continue;
                }
                if let Some(replayed) = id.replay_unit(&cfg.workload, unit, unit_instrs, warmup) {
                    let profiled = analysis.cpis[unit as usize];
                    err += (replayed - profiled).abs() / profiled;
                    n += 1.0;
                }
            }
            let err = if n > 0.0 { err / n } else { f64::NAN };
            sums[wi] += err;
            cells.push(pct(err));
        }
        count += 1.0;
        rows.push(cells);
    }
    let mut avg = vec!["average".to_string()];
    for s in &sums {
        avg.push(pct(s / count));
    }
    rows.push(avg);

    println!("Extension — cold-start replay validation (per-point CPI error vs warm-up)");
    println!(
        "{}",
        render_table(
            &["workload", "no warmup", "0.1 unit", "0.5 unit", "1 unit", "2 units"],
            &rows
        )
    );
    println!(
        "Replay = fast-forward to the point, flush all caches, warm up for the\n\
         given prefix, measure one unit. Cache-hungry phases (the wc_sp hash\n\
         map) recover slowly; IO-stall-bound phases (sort_hp) barely notice.\n\
         At the paper's 100 M-instruction units the same absolute transient is\n\
         amortized ~2000× further — exactly why §III-A picks large units\n\
         instead of SMARTS-style 10 K units that need functional warming."
    );
}
