//! Regenerates Table I: the evaluated benchmarks, with measured job
//! statistics at the evaluation scale.

use simprof_bench::report::render_table;
use simprof_bench::{figures, run_all_workloads, EvalConfig};

fn main() {
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let rows: Vec<Vec<String>> = figures::table1(&runs, &cfg)
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                r.category.to_string(),
                r.input,
                r.units.to_string(),
                r.tasks.to_string(),
                r.instrs.to_string(),
            ]
        })
        .collect();
    println!("Table I — Evaluated benchmarks");
    println!("{}", render_table(&["workload", "type", "input", "units", "tasks", "instrs"], &rows));
}
