//! Extension experiment: SMARTS-style systematic sampling as an additional
//! baseline (the related-work comparison the paper discusses, §V).
//!
//! Systematic sampling needs no call stacks — its profiling cost is near
//! zero — but it is blind to code structure. This experiment compares its
//! error against SRS and SimProf at the same budget, reproducing the
//! related-work observation that stratification by code pays off when
//! phases differ in variance.

use simprof_bench::report::{pct, render_table};
use simprof_bench::{run_all_workloads, EvalConfig};
use simprof_core::{baselines, relative_error, srs_points, systematic_points};
use simprof_stats::split_seed;

fn main() {
    let cfg = EvalConfig::paper(42);
    let mut runs = run_all_workloads(&cfg);
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let n = 20;
    let reps = 30u64;

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for r in &runs {
        let oracle = r.analysis.oracle_cpi();
        // Systematic: average error over offsets (the scheme's only freedom).
        let mut sys_err = 0.0;
        let offsets = 10u64;
        for off in 0..offsets {
            let s = systematic_points(&r.output.trace, n, off as usize);
            sys_err += relative_error(s.predicted_cpi, oracle);
        }
        sys_err /= offsets as f64;
        let mut srs_err = 0.0;
        let mut sp_err = 0.0;
        for rep in 0..reps {
            let seed = split_seed(42, 0x5457 + rep);
            srs_err += relative_error(srs_points(&r.output.trace, n, seed).predicted_cpi, oracle);
            let sp = baselines::simprof_points(&r.analysis.model, &r.output.trace, n, seed);
            sp_err += relative_error(sp.predicted_cpi, oracle);
        }
        srs_err /= reps as f64;
        sp_err /= reps as f64;
        sums[0] += sys_err;
        sums[1] += srs_err;
        sums[2] += sp_err;
        rows.push(vec![r.label.clone(), pct(sys_err), pct(srs_err), pct(sp_err)]);
    }
    let k = runs.len() as f64;
    rows.push(vec!["average".into(), pct(sums[0] / k), pct(sums[1] / k), pct(sums[2] / k)]);
    println!("Extension — systematic (SMARTS-style) baseline at n = {n}");
    println!("{}", render_table(&["workload", "SYSTEMATIC", "SRS", "SimProf"], &rows));
    println!(
        "Systematic beats SRS on periodic workloads (its periodicity matches\n\
         stage structure) but SimProf's variance-aware allocation wins overall."
    );
}
