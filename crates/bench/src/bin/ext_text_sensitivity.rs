//! Extension experiment: input sensitivity for text workloads — the paper's
//! stated future work (§IV-E leaves text benchmarks for future work because
//! representative text inputs need corpus-statistic analysis; "for
//! WordCount, the inputs with different frequencies of words should be
//! used").
//!
//! Trains the wc_sp phase model on the Base corpus and applies Algorithm 1
//! across corpora that vary exactly the statistics the paper names: word-
//! frequency skew (Zipf exponent), vocabulary size (hash-map footprint), and
//! line length (scan/probe mix).

use simprof_bench::report::{pct, render_table};
use simprof_bench::EvalConfig;
use simprof_core::{input_sensitivity, SimProf};
use simprof_engine::MethodId;
use simprof_workloads::{Benchmark, TextInput};

fn main() {
    let cfg = EvalConfig::paper(42);
    let wl = cfg.workload;
    let bytes = wl.text_bytes;

    let train_lines = TextInput::Base.lines(bytes, wl.seed);
    let train = Benchmark::WordCount.run_spark_on_text(&wl, &train_lines);
    let analysis =
        SimProf::new(cfg.simprof).analyze(&train.trace).expect("workload trace is valid");
    println!(
        "training input Base: {} units, {} phases, oracle CPI {:.3}\n",
        train.trace.units.len(),
        analysis.k(),
        train.trace.oracle_cpi()
    );

    let mut refs = Vec::new();
    let mut names = Vec::new();
    let mut rows = Vec::new();
    for input in TextInput::ALL.into_iter().filter(|&i| i != TextInput::Base) {
        let lines = input.lines(bytes, wl.seed);
        let out = Benchmark::WordCount.run_spark_on_text(&wl, &lines);
        rows.push(vec![
            input.label().to_string(),
            out.trace.units.len().to_string(),
            format!("{:.3}", out.trace.oracle_cpi()),
        ]);
        refs.push(out.trace);
        names.push(input.label());
    }
    println!("{}", render_table(&["reference input", "units", "oracle CPI"], &rows));

    let rr: Vec<&_> = refs.iter().collect();
    let report = input_sensitivity(&analysis.model, &train.trace, &rr, 0.10);
    for h in 0..analysis.k() {
        let movers: Vec<&str> = report
            .per_reference
            .iter()
            .zip(&names)
            .filter(|(p, _)| p[h])
            .map(|(_, &n)| n)
            .collect();
        let top = analysis
            .model
            .top_methods(h, 1)
            .first()
            .map(|&(m, _)| train.registry.name(MethodId(m as u32)).to_owned())
            .unwrap_or_default();
        println!(
            "phase {h} ({:.0}% of units, {top}): {}",
            analysis.weights[h] * 100.0,
            if movers.is_empty() {
                "input INSENSITIVE".into()
            } else {
                format!("sensitive — moved by {movers:?}")
            }
        );
    }
    let points = analysis.select_points(20, 7);
    let frac = report.sensitive_point_fraction(&points);
    println!(
        "\nreference text inputs need {} of the 20-point budget ({} reduction)",
        pct(frac),
        pct(1.0 - frac)
    );
    println!(
        "\nReading: WordCount's fused combine phase depends directly on the\n\
         word-frequency distribution (hash-map footprint and hot-set size), so\n\
         skew/vocabulary changes move every phase — consistent with the paper's\n\
         §IV-E argument that text workloads need corpus-statistic-aware input\n\
         selection before sensitivity pruning pays off. Line length alone\n\
         (LongLines) moves nothing."
    );
}
