//! Concurrent-service isolation smoke: N profiling jobs through the
//! [`JobRunner`], then every job re-run solo and its shard compared byte
//! for byte.
//!
//! ```text
//! cargo run --release -p simprof-bench --bin bench_service -- \
//!     [--jobs N] [--concurrent N] [--seed S] [--threads N] \
//!     [--store DIR] [-o BENCH_service.json] \
//!     [--fleet-report FILE] [--fleet-timeline FILE]
//! ```
//!
//! The run builds `--jobs` specs (default 32) cycling through the Table I
//! workload matrix with distinct seeds, a mix of raw/LZ codecs, and three
//! tenants, and serves them at `--concurrent` (default 8) worker threads
//! into a sharded [`TraceStore`]. Four contracts are enforced, each a
//! non-zero exit on violation:
//!
//! 1. **Isolation** — every job is then re-run alone in a fresh store and
//!    its shard must be bit-identical to the one written under full
//!    concurrency. Any cross-job leak (a shared RNG, a sink observing a
//!    neighbor's units, an allocation charged to the wrong slot shifting a
//!    budget verdict) shows up as a byte diff here.
//! 2. **Store integrity** — `TraceStore::validate` must find the index and
//!    the shards on disk in exact agreement (sizes, unit counts, layout
//!    versions, no strays).
//! 3. **No failures** — every job must finish and stay within its memory
//!    budget.
//! 4. **Fleet-report determinism** — the same fleet re-run under a
//!    [`ScriptedClock`] must serialize to byte-identical
//!    [`simprof_obs::FleetReport`]s at 1, 4, and 8 workers and across a
//!    repeat run (DESIGN.md §18's determinism contract, end to end).
//!
//! With `-o`, writes the `BENCH_service.json` record CI uploads: job
//! counts, aggregate units/bytes, concurrent vs. solo wall-clock, and the
//! per-contract verdicts. `--fleet-report` saves the scripted-clock fleet
//! report and `--fleet-timeline` the wall-clock per-worker timeline, both
//! `report_check`-clean.

use std::sync::Arc;
use std::time::Instant;

use simprof_bench::apply_thread_flag;
use simprof_obs::TrackingAllocator;
use simprof_service::{fleet_report, fleet_slices, JobRunner, JobSpec, ScriptedClock, TraceStore};
use simprof_workloads::WorkloadId;

/// Real per-slot byte accounting for the jobs' `mem_cap_mb` verdicts.
#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

struct Args {
    jobs: usize,
    concurrent: usize,
    seed: u64,
    store: Option<String>,
    output: Option<String>,
    fleet_report: Option<String>,
    fleet_timeline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv = apply_thread_flag(std::env::args().skip(1).collect())?;
    let mut args = Args {
        jobs: 32,
        concurrent: 8,
        seed: 42,
        store: None,
        output: None,
        fleet_report: None,
        fleet_timeline: None,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--jobs" => {
                args.jobs = value(&flag)?.parse().map_err(|e| format!("invalid --jobs: {e}"))?
            }
            "--concurrent" => {
                args.concurrent =
                    value(&flag)?.parse().map_err(|e| format!("invalid --concurrent: {e}"))?
            }
            "--seed" => {
                args.seed = value(&flag)?.parse().map_err(|e| format!("invalid --seed: {e}"))?
            }
            "--store" => args.store = Some(value(&flag)?),
            "-o" | "--output" => args.output = Some(value(&flag)?),
            "--fleet-report" => args.fleet_report = Some(value(&flag)?),
            "--fleet-timeline" => args.fleet_timeline = Some(value(&flag)?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.jobs == 0 || args.concurrent == 0 {
        return Err("need --jobs ≥ 1 and --concurrent ≥ 1".into());
    }
    Ok(args)
}

/// The i-th job of the fleet: workloads cycle through the Table I matrix,
/// seeds stay distinct, every third job compresses, tenants rotate.
fn fleet_spec(i: usize, seed: u64) -> JobSpec {
    let workloads = WorkloadId::all();
    let w = workloads[i % workloads.len()];
    let mut spec = JobSpec::new(&format!("job-{i:03}"), &w.label());
    spec.seed = Some(seed + i as u64);
    spec.scale = Some("tiny".into());
    if i % 3 == 0 {
        spec.codec = Some("lz".into());
    }
    spec.tenant = Some(format!("tenant-{}", i % 3));
    spec.mem_cap_mb = Some(512);
    spec
}

fn run(args: &Args) -> Result<(), String> {
    let root = match &args.store {
        Some(dir) => dir.clone(),
        None => {
            let dir = std::env::temp_dir().join(format!("simprof_bench_service_{}", args.seed));
            let _ = std::fs::remove_dir_all(&dir);
            dir.to_str().ok_or("temp path is not UTF-8")?.to_owned()
        }
    };
    let specs: Vec<JobSpec> = (0..args.jobs).map(|i| fleet_spec(i, args.seed)).collect();

    // Phase 1 — the concurrent fleet.
    println!(
        "service smoke: {} jobs, {} concurrent, seed {}, store {root}",
        args.jobs, args.concurrent, args.seed
    );
    let runner = JobRunner::new(TraceStore::create(&root)?).with_max_concurrent(args.concurrent);
    let t0 = Instant::now();
    let results = runner.run(&specs);
    let concurrent_secs = t0.elapsed().as_secs_f64();
    runner.store().write_index()?;

    let mut failures = Vec::new();
    let mut total_units = 0u64;
    let mut total_bytes = 0u64;
    let mut over_cap = 0usize;
    for (spec, result) in specs.iter().zip(&results) {
        match result {
            Ok(o) => {
                total_units += o.units;
                total_bytes += o.trace_bytes;
                if !o.within_cap {
                    over_cap += 1;
                    failures.push(format!(
                        "job `{}`: peak {} bytes exceeded its {} byte budget",
                        o.id,
                        o.peak_bytes,
                        o.mem_cap_bytes.unwrap_or(0)
                    ));
                }
            }
            Err(e) => failures.push(format!("job `{}`: {e}", spec.id)),
        }
    }
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "  fleet: {ok}/{} jobs ok in {concurrent_secs:.2} s ({total_units} units, \
         {total_bytes} bytes, {over_cap} over budget)",
        args.jobs
    );

    // Phase 2 — store integrity.
    let check = TraceStore::validate(&root)?;
    for p in &check.problems {
        failures.push(format!("store: {p}"));
    }
    println!(
        "  store: {} shards, {} bytes across {} tenants, {}",
        check.shards,
        check.total_bytes,
        check.tenant_bytes.len(),
        if check.clean() { "index and disk agree" } else { "INCONSISTENT" }
    );

    // Phase 3 — isolation: each job solo, bytes compared to the fleet run.
    let solo_root = format!("{root}_solo");
    let t1 = Instant::now();
    let mut diverged = 0usize;
    for spec in &specs {
        let _ = std::fs::remove_dir_all(&solo_root);
        let solo = JobRunner::new(TraceStore::create(&solo_root)?).with_max_concurrent(1);
        match &solo.run(std::slice::from_ref(spec))[0] {
            Ok(_) => {
                let fleet_bytes = std::fs::read(runner.store().shard_path(&spec.id))
                    .map_err(|e| format!("read fleet shard `{}`: {e}", spec.id))?;
                let solo_bytes = std::fs::read(solo.store().shard_path(&spec.id))
                    .map_err(|e| format!("read solo shard `{}`: {e}", spec.id))?;
                if fleet_bytes != solo_bytes {
                    diverged += 1;
                    failures.push(format!(
                        "job `{}`: shard under {} concurrent neighbors differs from its solo \
                         run ({} vs {} bytes)",
                        spec.id,
                        args.concurrent,
                        fleet_bytes.len(),
                        solo_bytes.len()
                    ));
                }
            }
            Err(e) => failures.push(format!("job `{}` (solo): {e}", spec.id)),
        }
    }
    let solo_secs = t1.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&solo_root);
    println!(
        "  isolation: {} jobs replayed solo in {solo_secs:.2} s, {diverged} diverged",
        args.jobs
    );

    if let Some(path) = &args.fleet_timeline {
        let slices = fleet_slices(&results);
        simprof_obs::write_fleet_timeline(&slices, std::path::Path::new(path))?;
        println!("  wrote fleet timeline {path} ({} job slices)", slices.len());
    }

    // Phase 4 — fleet-report determinism: the same fleet under a scripted
    // clock must serialize identically at 1/4/8 workers and across a
    // repeat. Runs after the phases above so every process-global lazy
    // init is warm and allocation peaks are reproducible.
    let det_root = format!("{root}_fleet");
    let t2 = Instant::now();
    let mut fleet_texts: Vec<(usize, String)> = Vec::new();
    for workers in [1usize, 4, 8, 8] {
        let _ = std::fs::remove_dir_all(&det_root);
        let det = JobRunner::new(TraceStore::create(&det_root)?)
            .with_max_concurrent(workers)
            .with_clock(Arc::new(ScriptedClock::fixed(0)));
        let det_results = det.run(&specs);
        let report = fleet_report(det.store(), &specs, &det_results)?;
        fleet_texts.push((workers, report.to_json_pretty()));
    }
    let _ = std::fs::remove_dir_all(&det_root);
    let baseline = fleet_texts[0].1.clone();
    let mut fleet_diverged = 0usize;
    for (workers, text) in &fleet_texts[1..] {
        if *text != baseline {
            fleet_diverged += 1;
            failures.push(format!(
                "fleet report at {workers} workers differs from the 1-worker baseline \
                 under a scripted clock"
            ));
        }
    }
    let fleet_secs = t2.elapsed().as_secs_f64();
    println!(
        "  fleet report: {} scripted-clock passes in {fleet_secs:.2} s, {fleet_diverged} \
         diverged from the 1-worker baseline",
        fleet_texts.len()
    );
    if let Some(path) = &args.fleet_report {
        std::fs::write(path, &baseline).map_err(|e| format!("write {path}: {e}"))?;
        println!("  wrote fleet report {path}");
    }

    if let Some(path) = &args.output {
        let record = serde_json::json!({
            "bench": "service/concurrent_isolation",
            "jobs": args.jobs,
            "concurrent": args.concurrent,
            "seed": args.seed,
            "jobs_ok": ok,
            "jobs_over_budget": over_cap,
            "total_units": total_units,
            "total_trace_bytes": total_bytes,
            "store_shards": check.shards,
            "store_bytes": check.total_bytes,
            "store_clean": check.clean(),
            "tenants": check.tenant_bytes.len(),
            "concurrent_secs": concurrent_secs,
            "solo_replay_secs": solo_secs,
            "jobs_per_sec_concurrent": args.jobs as f64 / concurrent_secs.max(1e-12),
            "shards_diverged_from_solo": diverged,
            "isolation_bit_identical": diverged == 0,
            "fleet_report_passes": fleet_texts.len(),
            "fleet_report_secs": fleet_secs,
            "fleet_report_deterministic": fleet_diverged == 0,
            "failures": failures.clone(),
        });
        let text = serde_json::to_string_pretty(&record).expect("record encodes");
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if args.store.is_none() {
        let _ = std::fs::remove_dir_all(&root);
    }

    if !failures.is_empty() {
        return Err(format!("{} violation(s):\n  {}", failures.len(), failures.join("\n  ")));
    }
    println!(
        "  all contracts hold: isolation bit-identical, store consistent, budgets kept, \
         fleet report deterministic"
    );
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
