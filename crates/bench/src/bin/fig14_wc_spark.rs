//! Regenerates Fig. 14: WordCount on Spark — CPI of each sampling unit with
//! units sorted by phase id (the fused map-side-combine phase dominates).

use simprof_bench::{figures, harness, EvalConfig};
use simprof_workloads::{Benchmark, Framework, WorkloadId};

fn main() {
    let cfg = EvalConfig::paper(42);
    let run = harness::run_workload(
        WorkloadId { benchmark: Benchmark::WordCount, framework: Framework::Spark },
        &cfg,
    );
    println!("Fig. 14 — wc_sp: unit CPI and phase id (units sorted by phase)");
    println!("{:>6} {:>6} {:>8} {:>6}", "order", "unit", "cpi", "phase");
    for p in figures::fig14_15(&run) {
        println!("{:>6} {:>6} {:>8.3} {:>6}", p.order, p.unit, p.cpi, p.phase);
    }
    let k = run.analysis.k();
    let sizes = run.analysis.model.phase_sizes();
    println!("# phases: {k}, sizes: {sizes:?}");

    // ASCII rendition of the figure (units sorted by phase, CPI dots,
    // phase boundaries marked).
    let pts = figures::fig14_15(&run);
    let cpis: Vec<f64> = pts.iter().map(|p| p.cpi).collect();
    let phases: Vec<usize> = pts.iter().map(|p| p.phase).collect();
    println!("\n{}", simprof_bench::report::render_scatter(&cpis, &phases, 100, 12));
}
