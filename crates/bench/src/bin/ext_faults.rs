//! Extension experiment: robustness under *runtime* fault injection.
//!
//! Where `ext_retries` duplicates tasks statically before the run, this
//! experiment stresses the live recovery machinery: executors crash mid-task
//! and are re-queued, stragglers run slow and are raced by speculative
//! twins, shuffle fetches get lost and re-charged through the network/disk
//! models, and the profiler drops snapshots — all driven by one seeded
//! `FaultPlan` at increasing rates. Phase formation and the stratified CPI
//! estimate should stay stable: recovered work repeats the same call
//! stacks, so it lands in the same phases.

use simprof_bench::report::{f3, pct, render_table};
use simprof_bench::EvalConfig;
use simprof_core::{relative_error, SimProf};
use simprof_engine::{FaultPlan, MethodRegistry, SchedConfig, Scheduler};
use simprof_profiler::SamplingManager;
use simprof_sim::Machine;
use simprof_workloads::{Benchmark, Framework, WorkloadId};

fn main() {
    let cfg = EvalConfig::paper(42);
    // More tasks than the default matrix so percent-level fault rates hit a
    // meaningful number of attempts.
    let mut wl = cfg.workload;
    wl.partitions = 32;
    wl.reducers = 8;
    let id = WorkloadId { benchmark: Benchmark::WordCount, framework: Framework::Hadoop };
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for (label, ppm) in [("0%", 0u32), ("10%", 100_000), ("20%", 200_000), ("40%", 400_000)] {
        // Milder slowdown than the default 4x: wc_hp stragglers at 4x are
        // outliers extreme enough to merge phases, which is a clustering
        // stress test rather than the recovery stress this experiment is
        // after.
        let plan = FaultPlan { straggler_factor: 2, ..FaultPlan::uniform(ppm, 99) };
        let mut machine = Machine::new(wl.machine);
        let mut registry = MethodRegistry::new();
        let job = id.benchmark.build(id.framework, &wl, &mut machine, &mut registry);
        let mut manager = SamplingManager::new(wl.profiler).with_faults(plan);
        let sched = Scheduler::new(SchedConfig { faults: plan, ..wl.sched });
        let log = sched.run(&mut machine, &job, &mut manager);
        let trace = manager.finish();
        let analysis = SimProf::new(cfg.simprof).analyze(&trace).expect("workload trace is valid");
        let oracle = analysis.oracle_cpi();
        let reps = 20u64;
        let mut err = 0.0;
        for rep in 0..reps {
            let pts = analysis.select_points(20, 800 + rep);
            err += relative_error(analysis.estimate(&pts, 3.0).mean_cpi, oracle);
        }
        let mean_err = err / reps as f64;
        errors.push(mean_err);
        rows.push(vec![
            label.to_string(),
            log.crashes().to_string(),
            log.stragglers().to_string(),
            log.lost_fetches().to_string(),
            trace.units.len().to_string(),
            trace.truncated_units().to_string(),
            trace.dropped_snapshots().to_string(),
            f3(oracle),
            analysis.k().to_string(),
            f3(analysis.cov.weighted),
            pct(mean_err),
        ]);
    }
    println!("Extension — robustness under runtime fault injection (wc_hp)");
    println!(
        "{}",
        render_table(
            &[
                "fault rate",
                "crashes",
                "strag",
                "lost",
                "units",
                "trunc",
                "dropped",
                "CPI",
                "phases",
                "w.CoV",
                "SimProf err (n=20)",
            ],
            &rows
        )
    );
    println!(
        "Crashed attempts are re-queued (lost work stays charged), stragglers\n\
         are raced by speculative twins, and lost fetches pay a re-fetch stall;\n\
         the recovered work repeats the same call stacks, so phase formation\n\
         absorbs it and the stratified estimate stays within its error band."
    );
    // The acceptance bar for this experiment: the 20%-rate estimate error is
    // within 2x of the fault-free baseline (both averaged over 20 samplings).
    let baseline = errors[0].max(1e-6);
    println!(
        "error at 20% combined faults: {} vs fault-free {} ({:.2}x)",
        pct(errors[2]),
        pct(errors[0]),
        errors[2] / baseline
    );
}
