//! Schema validator for observability artifacts.
//!
//! ```text
//! cargo run -p simprof-bench --bin report_check -- \
//!     run.json events.jsonl timeline.json
//! ```
//!
//! Each path argument is validated against the schema this build emits,
//! with the format picked per file:
//!
//! * `*.jsonl` — a streaming event log ([`simprof_obs::events`]): every
//!   line must parse as a schema-v[`EVENT_SCHEMA_VERSION`] record with the
//!   `v`/`seq`/`ts_us`/`kind` envelope, the first record must be the
//!   `meta` header, `seq` must be strictly increasing and `ts_us`
//!   non-decreasing over the file, and `span_open`/`span_close` records
//!   must nest LIFO per thread with matching span ids.
//! * JSON with a `traceEvents` key — a Chrome-trace timeline
//!   ([`simprof_obs::timeline`]): non-empty event array, required
//!   `name`/`ph`/`pid` keys, `ph` drawn from `B`/`E`/`X`/`C`/`M`, `B`/`E`
//!   slices balanced per tid with matching names and non-decreasing
//!   timestamps, counter samples non-decreasing in time per counter name.
//! * JSON with a `shards` key — a shard-store index
//!   ([`simprof_service::StoreIndex`], written by `simprof serve`): the
//!   index and the store on disk must agree exactly — every recorded
//!   shard present with the recorded size, readable, with a footer
//!   matching the recorded unit count and layout, and no stray `.sptrc`
//!   files outside the index.
//! * JSON with `tenants` and `totals` keys — a fleet report
//!   ([`simprof_obs::FleetReport`], written by `simprof serve
//!   --fleet-report`): versioned, jobs strictly sorted by id, derived
//!   compression ratios consistent, and the totals and per-tenant
//!   aggregates must recompute exactly from the per-job entries.
//! * anything else — a versioned run report: must parse as a
//!   [`simprof_obs::RunReport`], carry [`simprof_obs::REPORT_VERSION`], a
//!   non-empty span tree, a non-empty metrics snapshot, and an
//!   `allocation` section whose rows hold the Eq. 1 columns.
//!
//! Exits nonzero naming the first violated requirement per file, so CI can
//! gate every artifact kind without external JSON tooling.

use std::collections::BTreeMap;

use serde_json::Value;
use simprof_obs::{
    FleetReport, RunReport, EVENT_SCHEMA_VERSION, FLEET_REPORT_VERSION, REPORT_VERSION,
};

/// What a file validated as (for the per-file success line).
enum Checked {
    Report,
    EventLog { records: usize },
    Timeline { events: usize },
    StoreIndex { shards: usize, bytes: u64 },
    FleetReport { jobs: usize, tenants: usize },
}

/// Validates a fleet report (`simprof serve --fleet-report`): version,
/// job ordering, derived compression ratios, and the totals/per-tenant
/// aggregates recomputed from the per-job entries.
fn check_fleet_report(text: &str) -> Result<Checked, String> {
    let report: FleetReport =
        serde_json::from_str(text).map_err(|e| format!("not a fleet report: {e}"))?;
    if report.version != FLEET_REPORT_VERSION {
        return Err(format!(
            "fleet schema version {} (this build checks version {FLEET_REPORT_VERSION})",
            report.version
        ));
    }
    for pair in report.jobs.windows(2) {
        if pair[0].id >= pair[1].id {
            return Err(format!(
                "jobs `{}` and `{}` are not strictly sorted by id",
                pair[0].id, pair[1].id
            ));
        }
    }
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut units = 0u64;
    let mut trace_bytes = 0u64;
    let mut run_us = 0u64;
    for job in &report.jobs {
        if job.ok {
            ok += 1;
            units += job.units;
            trace_bytes += job.trace_bytes;
        } else {
            failed += 1;
            if job.error.is_none() {
                return Err(format!("failed job `{}` carries no error", job.id));
            }
        }
        run_us += job.run_us;
        let expect = if job.raw_payload_bytes == 0 {
            1.0
        } else {
            job.stored_payload_bytes as f64 / job.raw_payload_bytes as f64
        };
        if job.compression != expect {
            return Err(format!(
                "job `{}`: compression {} does not equal stored/raw ({expect})",
                job.id, job.compression
            ));
        }
        let tenant = report
            .tenants
            .get(&job.tenant)
            .ok_or_else(|| format!("job `{}` names unknown tenant `{}`", job.id, job.tenant))?;
        if job.queue_us > tenant.max_wait_us {
            return Err(format!(
                "job `{}` waited {}us but tenant `{}` reports max_wait_us {}",
                job.id, job.queue_us, job.tenant, tenant.max_wait_us
            ));
        }
    }
    let t = &report.totals;
    if t.jobs != report.jobs.len() as u64
        || t.ok != ok
        || t.failed != failed
        || t.units != units
        || t.trace_bytes != trace_bytes
        || t.run_us != run_us
    {
        return Err("totals do not match the per-job entries".into());
    }
    for (name, tenant) in &report.tenants {
        let jobs = report.jobs.iter().filter(|j| &j.tenant == name).count() as u64;
        let failed = report.jobs.iter().filter(|j| &j.tenant == name && !j.ok).count() as u64;
        if tenant.jobs != jobs || tenant.failed != failed {
            return Err(format!("tenant `{name}` job/failure counts disagree with the job list"));
        }
        if tenant.queue_wait_us.count != jobs || tenant.run_time_us.count != jobs {
            return Err(format!("tenant `{name}` histogram counts disagree with its job count"));
        }
        if !(0.0..=1.0).contains(&tenant.pool_share) {
            return Err(format!("tenant `{name}` pool_share {} out of [0,1]", tenant.pool_share));
        }
    }
    Ok(Checked::FleetReport { jobs: report.jobs.len(), tenants: report.tenants.len() })
}

/// Validates a shard-store index against the store rooted at the index
/// file's directory.
fn check_store_index(path: &str) -> Result<Checked, String> {
    let root = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| ".".to_owned(), |p| p.to_string_lossy().into_owned());
    let check = simprof_service::TraceStore::validate(&root)?;
    if let Some(first) = check.problems.first() {
        return Err(format!("{} store problem(s); first: {first}", check.problems.len()));
    }
    Ok(Checked::StoreIndex { shards: check.shards, bytes: check.total_bytes })
}

/// Validates a streaming JSONL event log.
fn check_event_log(text: &str) -> Result<Checked, String> {
    let mut records = 0usize;
    let mut last_seq: Option<u64> = None;
    let mut last_ts: Option<u64> = None;
    let mut open: BTreeMap<u64, Vec<u64>> = BTreeMap::new();

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {lineno}: not a JSON record: {e}"))?;
        let envelope = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {lineno}: missing `{key}`"))
        };
        let ver = envelope("v")?;
        if ver != u64::from(EVENT_SCHEMA_VERSION) {
            return Err(format!(
                "line {lineno}: event schema v{ver} (this build checks v{EVENT_SCHEMA_VERSION})"
            ));
        }
        let seq = envelope("seq")?;
        let ts = envelope("ts_us")?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing `kind`"))?;
        if records == 0 && kind != "meta" {
            return Err(format!("line {lineno}: first record is `{kind}`, expected `meta`"));
        }
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!(
                    "line {lineno}: seq {seq} is not strictly increasing (previous {prev})"
                ));
            }
        }
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("line {lineno}: ts_us {ts} went backwards (previous {prev})"));
            }
        }
        last_seq = Some(seq);
        last_ts = Some(ts);
        records += 1;

        match kind {
            "span_open" => {
                let id = envelope("id")?;
                let thread = envelope("thread")?;
                open.entry(thread).or_default().push(id);
            }
            "span_close" => {
                let id = envelope("id")?;
                let thread = envelope("thread")?;
                match open.entry(thread).or_default().pop() {
                    Some(top) if top == id => {}
                    Some(top) => {
                        return Err(format!(
                            "line {lineno}: span_close id {id} on thread {thread} \
                             closes span {top} (not LIFO)"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "line {lineno}: span_close id {id} with no open span on \
                             thread {thread}"
                        ));
                    }
                }
            }
            "meta" | "counter" | "gauge" | "hist" | "fault" | "unit_closed" | "salvage"
            | "sink_retry" | "sink_degraded" | "phase_reformed" | "early_stop" | "job_queued"
            | "job_started" | "job_finished" | "job_failed" => {}
            other => return Err(format!("line {lineno}: unknown kind `{other}`")),
        }
    }
    if records == 0 {
        return Err("event log is empty".into());
    }
    for (thread, stack) in &open {
        if !stack.is_empty() {
            return Err(format!("thread {thread} has {} unclosed span(s)", stack.len()));
        }
    }
    Ok(Checked::EventLog { records })
}

/// Validates a Chrome-trace timeline document.
fn check_timeline(doc: &Value) -> Result<Checked, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "`traceEvents` is missing or not an array".to_owned())?;
    if events.is_empty() {
        return Err("`traceEvents` is empty".into());
    }
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut counter_ts: BTreeMap<String, u64> = BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing `name`"))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        e.get("pid").and_then(Value::as_u64).ok_or_else(|| format!("event {i}: missing `pid`"))?;
        let field = |key: &str| {
            e.get(key).and_then(Value::as_u64).ok_or_else(|| format!("event {i}: missing `{key}`"))
        };
        match ph {
            "M" => {} // metadata (thread_name); no ts/tid requirements
            "B" | "E" => {
                let tid = field("tid")?;
                let ts = field("ts")?;
                let last = last_ts.entry(tid).or_insert(0);
                if ts < *last {
                    return Err(format!(
                        "event {i}: ts {ts} on tid {tid} went backwards (previous {last})"
                    ));
                }
                *last = ts;
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    stack.push(name.to_owned());
                } else {
                    match stack.pop() {
                        Some(top) if top == name => {}
                        Some(top) => {
                            return Err(format!(
                                "event {i}: E `{name}` on tid {tid} closes `{top}`"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "event {i}: E `{name}` with no open slice on tid {tid}"
                            ));
                        }
                    }
                }
            }
            "X" => {
                field("tid")?;
                field("ts")?;
                field("dur")?;
            }
            "C" => {
                let ts = field("ts")?;
                let last = counter_ts.entry(name.to_owned()).or_insert(0);
                if ts < *last {
                    return Err(format!(
                        "event {i}: counter `{name}` ts {ts} went backwards (previous {last})"
                    ));
                }
                *last = ts;
            }
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid} has {} unclosed slice(s)", stack.len()));
        }
    }
    Ok(Checked::Timeline { events: events.len() })
}

/// Validates a versioned run report.
fn check_report(text: &str) -> Result<Checked, String> {
    let report: RunReport =
        serde_json::from_str(text).map_err(|e| format!("not a run report: {e}"))?;
    if report.version != REPORT_VERSION {
        return Err(format!(
            "schema version {} (this build checks version {REPORT_VERSION})",
            report.version
        ));
    }
    if report.spans.is_empty() {
        return Err("span tree is empty".into());
    }
    let m = &report.metrics;
    if m.counters.is_empty() && m.gauges.is_empty() && m.histograms.is_empty() {
        return Err("metrics snapshot is empty".into());
    }
    let alloc = report
        .sections
        .get("allocation")
        .ok_or_else(|| "missing `allocation` section".to_owned())?;
    let rows = alloc.as_array().ok_or_else(|| "`allocation` section is not an array".to_owned())?;
    if rows.is_empty() {
        return Err("`allocation` table has no rows".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let entries =
            row.as_object().ok_or_else(|| format!("allocation row {i} is not an object"))?;
        for key in ["phase", "units", "weight", "stddev", "allocated"] {
            if !entries.iter().any(|(k, _)| k == key) {
                return Err(format!("allocation row {i} lacks the `{key}` column"));
            }
        }
    }
    Ok(Checked::Report)
}

/// Validates one file, picking the schema from its shape: `*.jsonl` is an
/// event log, JSON with `traceEvents` is a timeline, anything else must be
/// a run report.
fn check(path: &str) -> Result<Checked, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    if path.ends_with(".jsonl") {
        return check_event_log(&text);
    }
    if let Ok(doc) = serde_json::from_str::<Value>(text.trim()) {
        if doc.get("traceEvents").is_some() {
            return check_timeline(&doc);
        }
        if doc.get("shards").is_some() {
            return check_store_index(path);
        }
        if doc.get("tenants").is_some() && doc.get("totals").is_some() {
            return check_fleet_report(&text);
        }
    }
    check_report(&text)
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: report_check <report.json|events.jsonl|timeline.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check(path) {
            Ok(Checked::Report) => println!("{path}: ok (run report, schema v{REPORT_VERSION})"),
            Ok(Checked::EventLog { records }) => {
                println!(
                    "{path}: ok (event log, schema v{EVENT_SCHEMA_VERSION}, {records} records)"
                )
            }
            Ok(Checked::Timeline { events }) => {
                println!("{path}: ok (chrome-trace timeline, {events} events)")
            }
            Ok(Checked::StoreIndex { shards, bytes }) => {
                println!("{path}: ok (shard-store index, {shards} shards, {bytes} bytes)")
            }
            Ok(Checked::FleetReport { jobs, tenants }) => {
                println!(
                    "{path}: ok (fleet report, schema v{FLEET_REPORT_VERSION}, {jobs} jobs, \
                     {tenants} tenants)"
                )
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
