//! Schema validator for observability run reports.
//!
//! ```text
//! cargo run -p simprof-bench --bin report_check -- run.json BENCH_report.json
//! ```
//!
//! Checks every path argument against the report schema this build emits
//! ([`simprof_obs::REPORT_VERSION`]): the document must parse as a
//! [`simprof_obs::RunReport`], carry the current version, a non-empty span
//! tree, a non-empty metrics snapshot, and an `allocation` section that is
//! a non-empty array of rows each holding the Eq. 1 columns. Exits nonzero
//! naming the first violated requirement per file, so CI can gate report
//! artifacts without external JSON tooling.

use simprof_obs::{RunReport, REPORT_VERSION};

/// Validates one report file, returning the first violated requirement.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let report: RunReport =
        serde_json::from_str(&text).map_err(|e| format!("not a run report: {e}"))?;
    if report.version != REPORT_VERSION {
        return Err(format!(
            "schema version {} (this build checks version {REPORT_VERSION})",
            report.version
        ));
    }
    if report.spans.is_empty() {
        return Err("span tree is empty".into());
    }
    let m = &report.metrics;
    if m.counters.is_empty() && m.gauges.is_empty() && m.histograms.is_empty() {
        return Err("metrics snapshot is empty".into());
    }
    let alloc = report
        .sections
        .get("allocation")
        .ok_or_else(|| "missing `allocation` section".to_owned())?;
    let rows = alloc.as_array().ok_or_else(|| "`allocation` section is not an array".to_owned())?;
    if rows.is_empty() {
        return Err("`allocation` table has no rows".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let entries =
            row.as_object().ok_or_else(|| format!("allocation row {i} is not an object"))?;
        for key in ["phase", "units", "weight", "stddev", "allocated"] {
            if !entries.iter().any(|(k, _)| k == key) {
                return Err(format!("allocation row {i} lacks the `{key}` column"));
            }
        }
    }
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: report_check <report.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check(path) {
            Ok(()) => println!("{path}: ok (schema v{REPORT_VERSION})"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
