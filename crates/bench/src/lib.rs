//! Benchmark harness for SimProf.
//!
//! Regenerates every table and figure of the paper's evaluation (§IV):
//! the [`figures`] module computes each one as plain data (so the
//! computations are unit-testable), the `src/bin/figNN_*` binaries print
//! them, `src/bin/all_figures` runs the whole evaluation and emits the
//! paper-vs-measured record for `EXPERIMENTS.md`, and `benches/` holds the
//! Criterion micro/ablation benchmarks.

pub mod figures;
pub mod harness;
pub mod report;
pub mod svg;

pub use harness::{apply_thread_flag, run_all_workloads, EvalConfig, WorkloadRun};
