//! Shared evaluation harness: runs the 12-workload matrix, attaches the
//! SimProf analysis to each run, and caches everything for the figure
//! computations.
//!
//! The workload fan-out in [`run_all_workloads`] is the outermost parallel
//! region: the parallel k-means/silhouette calls inside each analysis then
//! run sequentially on their worker (the substrate's nested-region guard),
//! so the twelve workloads parallelize without multiplying threads. Results
//! are bit-identical at every worker count (DESIGN.md §10).

use rayon::prelude::*;

use simprof_core::{Analysis, SimProf, SimProfConfig};
use simprof_workloads::{RunOutput, WorkloadConfig, WorkloadId};

/// Evaluation-wide settings.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Workload scale/config.
    pub workload: WorkloadConfig,
    /// SimProf pipeline config.
    pub simprof: SimProfConfig,
    /// Simulated-cycle budget of the SECOND baseline (the paper's
    /// "10-second interval", scaled with the workloads).
    pub second_cycles: u64,
    /// Sample size used in the Fig. 7 error comparison.
    pub fig7_sample_size: usize,
    /// Repetitions over which seeded samplers (SRS, SimProf) average their
    /// error in Fig. 7.
    pub fig7_reps: u64,
}

impl EvalConfig {
    /// The figure-generation configuration.
    pub fn paper(seed: u64) -> Self {
        Self {
            workload: WorkloadConfig::paper(seed),
            simprof: SimProfConfig { seed, ..Default::default() },
            second_cycles: 6_000_000,
            fig7_sample_size: 20,
            fig7_reps: 30,
        }
    }

    /// A fast configuration for harness self-tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            workload: WorkloadConfig::tiny(seed),
            simprof: SimProfConfig { seed, ..Default::default() },
            second_cycles: 800_000,
            fig7_sample_size: 10,
            fig7_reps: 5,
        }
    }
}

/// One profiled + analyzed workload.
pub struct WorkloadRun {
    /// Which workload.
    pub id: WorkloadId,
    /// The paper-style label (`wc_hp`, …).
    pub label: String,
    /// Profile + registry + job stats.
    pub output: RunOutput,
    /// The SimProf analysis (phases, homogeneity, CPIs).
    pub analysis: Analysis,
}

/// Profiles and analyzes all twelve workloads, in parallel.
pub fn run_all_workloads(cfg: &EvalConfig) -> Vec<WorkloadRun> {
    WorkloadId::all().into_par_iter().map(|id| run_workload(id, cfg)).collect()
}

/// Profiles and analyzes one workload.
pub fn run_workload(id: WorkloadId, cfg: &EvalConfig) -> WorkloadRun {
    let output = id.run_full(&cfg.workload);
    let analysis =
        SimProf::new(cfg.simprof).analyze(&output.trace).expect("workload trace is valid");
    WorkloadRun { id, label: id.label(), output, analysis }
}

/// Strips a `--threads N` flag from `args`, installs the worker-count
/// override (taking precedence over `SIMPROF_THREADS`), and returns the
/// remaining arguments. Shared by the figure/bench binaries so reproduction
/// runs are schedulable on shared machines.
pub fn apply_thread_flag(args: Vec<String>) -> Result<Vec<String>, String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let v = it.next().ok_or("--threads requires a value")?;
            let t: usize = v.parse().map_err(|e| format!("invalid --threads: {e}"))?;
            if t == 0 {
                return Err("--threads must be at least 1".into());
            }
            // Installed before any parallel region: thread count never
            // changes result bits, but the override must win from the start.
            rayon::set_threads(t);
            assert_eq!(rayon::current_threads(), t, "--threads override must apply immediately");
        } else {
            rest.push(a);
        }
    }
    Ok(rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_harness_runs_everything() {
        let runs = run_all_workloads(&EvalConfig::tiny(3));
        assert_eq!(runs.len(), 12);
        for r in &runs {
            assert!(!r.output.trace.units.is_empty(), "{}", r.label);
            assert!(r.analysis.k() >= 1, "{}", r.label);
        }
    }

    #[test]
    fn thread_flag_is_stripped_and_validated() {
        let args = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let rest = apply_thread_flag(args("out.md --threads 2 --quick")).unwrap();
        assert_eq!(rest, args("out.md --quick"));
        rayon::set_threads(0); // restore the default
        assert!(apply_thread_flag(args("--threads")).is_err());
        assert!(apply_thread_flag(args("--threads 0")).is_err());
        assert!(apply_thread_flag(args("--threads x")).is_err());
    }
}
