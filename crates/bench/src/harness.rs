//! Shared evaluation harness: runs the 12-workload matrix, attaches the
//! SimProf analysis to each run, and caches everything for the figure
//! computations.

use rayon::prelude::*;

use simprof_core::{Analysis, SimProf, SimProfConfig};
use simprof_workloads::{RunOutput, WorkloadConfig, WorkloadId};

/// Evaluation-wide settings.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Workload scale/config.
    pub workload: WorkloadConfig,
    /// SimProf pipeline config.
    pub simprof: SimProfConfig,
    /// Simulated-cycle budget of the SECOND baseline (the paper's
    /// "10-second interval", scaled with the workloads).
    pub second_cycles: u64,
    /// Sample size used in the Fig. 7 error comparison.
    pub fig7_sample_size: usize,
    /// Repetitions over which seeded samplers (SRS, SimProf) average their
    /// error in Fig. 7.
    pub fig7_reps: u64,
}

impl EvalConfig {
    /// The figure-generation configuration.
    pub fn paper(seed: u64) -> Self {
        Self {
            workload: WorkloadConfig::paper(seed),
            simprof: SimProfConfig { seed, ..Default::default() },
            second_cycles: 6_000_000,
            fig7_sample_size: 20,
            fig7_reps: 30,
        }
    }

    /// A fast configuration for harness self-tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            workload: WorkloadConfig::tiny(seed),
            simprof: SimProfConfig { seed, ..Default::default() },
            second_cycles: 800_000,
            fig7_sample_size: 10,
            fig7_reps: 5,
        }
    }
}

/// One profiled + analyzed workload.
pub struct WorkloadRun {
    /// Which workload.
    pub id: WorkloadId,
    /// The paper-style label (`wc_hp`, …).
    pub label: String,
    /// Profile + registry + job stats.
    pub output: RunOutput,
    /// The SimProf analysis (phases, homogeneity, CPIs).
    pub analysis: Analysis,
}

/// Profiles and analyzes all twelve workloads, in parallel.
pub fn run_all_workloads(cfg: &EvalConfig) -> Vec<WorkloadRun> {
    WorkloadId::all().into_par_iter().map(|id| run_workload(id, cfg)).collect()
}

/// Profiles and analyzes one workload.
pub fn run_workload(id: WorkloadId, cfg: &EvalConfig) -> WorkloadRun {
    let output = id.run_full(&cfg.workload);
    let analysis =
        SimProf::new(cfg.simprof).analyze(&output.trace).expect("workload trace is valid");
    WorkloadRun { id, label: id.label(), output, analysis }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_harness_runs_everything() {
        let runs = run_all_workloads(&EvalConfig::tiny(3));
        assert_eq!(runs.len(), 12);
        for r in &runs {
            assert!(!r.output.trace.units.is_empty(), "{}", r.label);
            assert!(r.analysis.k() >= 1, "{}", r.label);
        }
    }
}
