//! Minimal self-contained SVG chart generation for the HTML evaluation
//! report: grouped bar charts (Figs. 6–10, 12–13) and phase-sorted CPI
//! scatters (Figs. 14–15). No dependencies; output is deterministic strings.

/// Escapes text for XML attribute/content positions.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

const PALETTE: [&str; 6] = ["#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c"];

/// A grouped bar chart: one group per label, one bar per series.
///
/// Returns a complete `<svg>` element. Values must be non-negative; the
/// y-axis autoscales to the maximum.
pub fn grouped_bars(
    title: &str,
    labels: &[String],
    series: &[(&str, Vec<f64>)],
    y_label: &str,
) -> String {
    let width = 960.0;
    let height = 360.0;
    let margin_left = 70.0;
    let margin_bottom = 70.0;
    let margin_top = 40.0;
    let plot_w = width - margin_left - 20.0;
    let plot_h = height - margin_top - margin_bottom;

    let max = series.iter().flat_map(|(_, vs)| vs.iter().copied()).fold(0.0f64, f64::max).max(1e-9);

    let mut svg = format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="12">"##
    );
    svg.push_str(&format!(
        r##"<text x="{}" y="20" font-size="15" font-weight="bold">{}</text>"##,
        margin_left,
        escape(title)
    ));
    // Y axis with 5 gridlines.
    for i in 0..=5 {
        let frac = i as f64 / 5.0;
        let y = margin_top + plot_h * (1.0 - frac);
        let value = max * frac;
        svg.push_str(&format!(
            r##"<line x1="{margin_left}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            margin_left + plot_w
        ));
        svg.push_str(&format!(
            r##"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"##,
            margin_left - 6.0,
            y + 4.0,
            format_value(value)
        ));
    }
    svg.push_str(&format!(
        r##"<text x="14" y="{:.1}" transform="rotate(-90 14 {:.1})" text-anchor="middle">{}</text>"##,
        margin_top + plot_h / 2.0,
        margin_top + plot_h / 2.0,
        escape(y_label)
    ));

    // Bars.
    let groups = labels.len().max(1) as f64;
    let group_w = plot_w / groups;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;
    for (gi, label) in labels.iter().enumerate() {
        let gx = margin_left + gi as f64 * group_w;
        for (si, (_, values)) in series.iter().enumerate() {
            let v = values.get(gi).copied().unwrap_or(0.0).max(0.0);
            let h = plot_h * (v / max);
            let x = gx + group_w * 0.1 + si as f64 * bar_w;
            let y = margin_top + plot_h - h;
            svg.push_str(&format!(
                r##"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{}"><title>{}: {}</title></rect>"##,
                PALETTE[si % PALETTE.len()],
                escape(label),
                format_value(v)
            ));
        }
        svg.push_str(&format!(
            r##"<text x="{:.1}" y="{:.1}" text-anchor="end" transform="rotate(-45 {:.1} {:.1})">{}</text>"##,
            gx + group_w / 2.0,
            margin_top + plot_h + 16.0,
            gx + group_w / 2.0,
            margin_top + plot_h + 16.0,
            escape(label)
        ));
    }
    // Legend.
    for (si, (name, _)) in series.iter().enumerate() {
        let x = margin_left + si as f64 * 130.0;
        let y = height - 14.0;
        svg.push_str(&format!(
            r##"<rect x="{x:.1}" y="{:.1}" width="12" height="12" fill="{}"/>"##,
            y - 10.0,
            PALETTE[si % PALETTE.len()]
        ));
        svg.push_str(&format!(r##"<text x="{:.1}" y="{y:.1}">{}</text>"##, x + 16.0, escape(name)));
    }
    svg.push_str("</svg>");
    svg
}

/// A phase-sorted CPI scatter (Figs. 14–15): CPI dots on the left axis, the
/// phase id step line on the right axis.
pub fn phase_scatter(title: &str, cpis: &[f64], phases: &[usize]) -> String {
    let width = 960.0;
    let height = 320.0;
    let margin_left = 60.0;
    let margin_bottom = 36.0;
    let margin_top = 40.0;
    let plot_w = width - margin_left - 60.0;
    let plot_h = height - margin_top - margin_bottom;
    let n = cpis.len().max(1) as f64;
    let max_cpi = cpis.iter().copied().fold(0.0f64, f64::max).max(1e-9);
    let max_phase = phases.iter().copied().max().unwrap_or(0).max(1) as f64;

    let mut svg = format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="12">"##
    );
    svg.push_str(&format!(
        r##"<text x="{margin_left}" y="20" font-size="15" font-weight="bold">{}</text>"##,
        escape(title)
    ));
    for i in 0..=4 {
        let frac = i as f64 / 4.0;
        let y = margin_top + plot_h * (1.0 - frac);
        svg.push_str(&format!(
            r##"<line x1="{margin_left}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eee"/>"##,
            margin_left + plot_w
        ));
        svg.push_str(&format!(
            r##"<text x="{:.1}" y="{:.1}" text-anchor="end">{:.1}</text>"##,
            margin_left - 6.0,
            y + 4.0,
            max_cpi * frac
        ));
    }
    // CPI dots.
    for (i, &c) in cpis.iter().enumerate() {
        let x = margin_left + plot_w * (i as f64 + 0.5) / n;
        let y = margin_top + plot_h * (1.0 - c / max_cpi);
        svg.push_str(&format!(r##"<circle cx="{x:.1}" cy="{y:.1}" r="1.6" fill="#4878d0"/>"##));
    }
    // Phase step line (right axis).
    let mut path = String::from("M");
    for (i, &p) in phases.iter().enumerate() {
        let x = margin_left + plot_w * (i as f64 + 0.5) / n;
        let y = margin_top + plot_h * (1.0 - p as f64 / max_phase);
        path.push_str(&format!("{x:.1},{y:.1} L"));
    }
    path.pop();
    svg.push_str(&format!(
        r##"<path d="{path}" stroke="#d65f5f" fill="none" stroke-width="1.5"/>"##
    ));
    svg.push_str(&format!(
        r##"<text x="{:.1}" y="{:.1}" fill="#d65f5f">phase id</text>"##,
        margin_left + plot_w + 4.0,
        margin_top + 10.0
    ));
    svg.push_str(&format!(
        r##"<text x="{:.1}" y="{:.1}" fill="#4878d0">CPI</text>"##,
        margin_left + plot_w + 4.0,
        margin_top + 26.0
    ));
    svg.push_str("</svg>");
    svg
}

fn format_value(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced(svg: &str) -> bool {
        svg.starts_with("<svg") && svg.ends_with("</svg>") && svg.matches("<svg").count() == 1
    }

    #[test]
    fn escape_covers_xml_specials() {
        assert_eq!(escape(r##"a<b>&"c""##), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn bars_render_all_groups_and_series() {
        let labels = vec!["wc_hp".to_string(), "wc_sp".to_string()];
        let series = vec![("population", vec![0.5, 0.2]), ("weighted", vec![0.3, 0.1])];
        let svg = grouped_bars("Fig 6", &labels, &series, "CoV");
        assert!(balanced(&svg));
        assert_eq!(svg.matches("<rect").count(), 4 + 2, "4 bars + 2 legend swatches");
        assert!(svg.contains("wc_hp"));
        assert!(svg.contains("weighted"));
    }

    #[test]
    fn bars_handle_empty_and_zero() {
        let svg = grouped_bars("empty", &[], &[], "y");
        assert!(balanced(&svg));
        let svg = grouped_bars("zeros", &["a".into()], &[("s", vec![0.0])], "y");
        assert!(balanced(&svg));
    }

    #[test]
    fn scatter_renders_points_and_phase_line() {
        let cpis = vec![1.0, 1.1, 3.0, 3.2];
        let phases = vec![0, 0, 1, 1];
        let svg = phase_scatter("Fig 14", &cpis, &phases);
        assert!(balanced(&svg));
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.contains("<path"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = grouped_bars("a<b>", &[], &[], "y");
        assert!(svg.contains("a&lt;b&gt;"));
        assert!(!svg.contains("a<b>"));
    }
}
