//! Plain-text table rendering for the figure binaries.

/// Renders a fixed-width table: header row, separator, data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders an ASCII scatter of `(x, y)` series plus a phase step-line, the
/// shape of the paper's Figs. 14–15: y-axis = CPI (dots), second series =
/// phase id (marked with `▒` columns at phase boundaries).
pub fn render_scatter(cpis: &[f64], phases: &[usize], width: usize, height: usize) -> String {
    if cpis.is_empty() {
        return String::from("(empty series)\n");
    }
    let n = cpis.len();
    let width = width.max(10).min(n.max(10));
    let height = height.max(5);
    let max_cpi = cpis.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    // Downsample x into `width` buckets (mean CPI, first phase id).
    let mut ys = Vec::with_capacity(width);
    let mut ps = Vec::with_capacity(width);
    for b in 0..width {
        let lo = b * n / width;
        let hi = ((b + 1) * n / width).max(lo + 1);
        let mean = cpis[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        ys.push(mean);
        ps.push(phases[lo]);
    }
    let mut out = String::new();
    for row in (0..height).rev() {
        let thresh = max_cpi * (row as f64 + 0.5) / height as f64;
        let label = if row == height - 1 {
            format!("{max_cpi:>6.2} |")
        } else if row == 0 {
            format!("{:>6.2} |", 0.0)
        } else {
            String::from("       |")
        };
        out.push_str(&label);
        for b in 0..width {
            let boundary = b > 0 && ps[b] != ps[b - 1];
            if ys[b] >= thresh {
                out.push('●');
            } else if boundary {
                out.push('▒');
            } else {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str("        phases: ");
    let mut last = usize::MAX;
    for &p in ps.iter().take(width) {
        out.push(if p != last { char::from_digit((p % 10) as u32, 10).unwrap() } else { '.' });
        last = p;
    }
    out.push('\n');
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn scatter_renders_shape() {
        // Second phase is *cheaper*, leaving headroom above its dots for
        // the boundary marker column.
        let cpis: Vec<f64> = (0..100).map(|i| if i < 70 { 3.0 } else { 1.0 }).collect();
        let phases: Vec<usize> = (0..100).map(|i| usize::from(i >= 70)).collect();
        let s = render_scatter(&cpis, &phases, 50, 8);
        assert!(s.contains('●'));
        assert!(s.contains('▒'), "phase boundary marked");
        assert!(s.lines().count() >= 10);
        assert_eq!(render_scatter(&[], &[], 50, 8), "(empty series)\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(f3(1.23456), "1.235");
    }
}
