//! Criterion benchmarks for the performance-critical kernels: the
//! statistics substrate (clustering, feature scoring, allocation), the
//! machine model (cache walks, pattern cursors), and the instrumented
//! engine kernels (quicksort trace, hash combine, k-way merge).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use simprof_engine::ops;
use simprof_sim::{AccessCursor, AccessPattern, Machine, MachineConfig, Region};
use simprof_stats::{
    f_regression, kmeans, optimal_allocation, silhouette_score, srs_indices_seeded, KMeans, Matrix,
    StratumStats,
};

/// A deterministic feature matrix shaped like a profiled trace: `n` units,
/// `d` features, `k` latent phases.
fn synth_features(n: usize, d: usize, k: usize) -> (Matrix, Vec<f64>) {
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let phase = i % k;
        let mut row = vec![0.0; d];
        for (j, v) in row.iter_mut().enumerate() {
            let hot = j % k == phase;
            let noise = (((i * 31 + j * 17) % 13) as f64) / 26.0;
            *v = if hot { 0.8 + noise * 0.2 } else { noise * 0.1 };
        }
        y.push(1.0 + phase as f64 * 0.7 + ((i % 7) as f64) * 0.02);
        rows.push(row);
    }
    (Matrix::from_rows(&rows), y)
}

fn bench_stats(c: &mut Criterion) {
    let (m, y) = synth_features(400, 100, 5);

    c.bench_function("stats/f_regression 400x100", |b| {
        b.iter(|| f_regression(black_box(&m), black_box(&y)))
    });

    let mut g = c.benchmark_group("stats/kmeans");
    for &k in &[2usize, 5, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| kmeans(black_box(&m), KMeans::new(k, 7)))
        });
    }
    g.finish();

    let r = kmeans(&m, KMeans::new(5, 7));
    c.bench_function("stats/silhouette 400", |b| {
        b.iter(|| silhouette_score(black_box(&m), black_box(&r.assignments)))
    });

    let strata: Vec<StratumStats> =
        (0..8).map(|i| StratumStats { units: 50 + i * 20, stddev: 0.1 + i as f64 * 0.2 }).collect();
    c.bench_function("stats/optimal_allocation", |b| {
        b.iter(|| optimal_allocation(black_box(20), black_box(&strata)))
    });

    c.bench_function("stats/srs 1000 choose 20", |b| {
        b.iter(|| srs_indices_seeded(black_box(1000), black_box(20), black_box(3)))
    });
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/cache_walk_64k_accesses");
    for (name, pattern) in [
        ("sequential", AccessPattern::Sequential),
        ("random", AccessPattern::Random),
        ("zipf", AccessPattern::Zipf),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut machine = Machine::new(MachineConfig::scaled(1));
                let region = machine.alloc(1 << 20);
                let mut cur = AccessCursor::new(region, pattern, 5);
                for _ in 0..65_536 {
                    machine.access(0, cur.next_addr());
                }
                black_box(machine.counters(0))
            })
        });
    }
    g.finish();
}

fn bench_ops(c: &mut Criterion) {
    c.bench_function("ops/quicksort_trace 32k", |b| {
        b.iter(|| {
            let mut data: Vec<u64> =
                (0..32_768u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            let region = Region::new(0x1000, 32_768 * 8);
            black_box(ops::quicksort_trace(&mut data, 8, region, vec![], 1))
        })
    });

    c.bench_function("ops/hash_combine 64k records", |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::scaled(1));
            let pairs = (0..65_536u64).map(|i| (i % 4_096, 1i64));
            black_box(ops::hash_combine(
                pairs,
                |a, b| *a += b,
                48,
                4_096,
                vec![],
                AccessPattern::Zipf,
                &mut machine,
                2,
            ))
        })
    });

    c.bench_function("ops/kway_merge 8x8k", |b| {
        let runs: Vec<Vec<u64>> =
            (0..8).map(|r| (0..8_192u64).map(|i| i * 8 + r).collect()).collect();
        b.iter(|| {
            let region = Region::new(0, 8 * 8_192 * 8);
            black_box(ops::kway_merge(black_box(&runs), 8, region, vec![], 3))
        })
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_stats, bench_machine, bench_ops
);
criterion_main!(kernels);
