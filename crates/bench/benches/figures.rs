//! Criterion benchmarks with one target per paper table/figure: each
//! measures the cost of regenerating that experiment's data at test scale
//! (the full-scale regeneration lives in the `figNN_*`/`tableN` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use simprof_bench::{figures, harness, run_all_workloads, EvalConfig};
use simprof_workloads::{Benchmark, Framework, WorkloadId};

fn bench_figures(c: &mut Criterion) {
    let cfg = EvalConfig::tiny(21);
    let runs = run_all_workloads(&cfg);
    let cc_sp = runs.iter().position(|r| r.label == "cc_sp").expect("cc_sp run");
    let wc_sp = runs.iter().position(|r| r.label == "wc_sp").expect("wc_sp run");

    c.bench_function("table1", |b| b.iter(|| black_box(figures::table1(&runs, &cfg))));
    c.bench_function("table2", |b| b.iter(|| black_box(figures::table2(&cfg))));
    c.bench_function("fig06_cov", |b| b.iter(|| black_box(figures::fig06(&runs))));
    c.bench_function("fig07_errors", |b| b.iter(|| black_box(figures::fig07(&runs, &cfg))));
    c.bench_function("fig08_sample_size", |b| b.iter(|| black_box(figures::fig08(&runs, &cfg))));
    c.bench_function("fig09_phase_count", |b| b.iter(|| black_box(figures::fig09(&runs))));
    c.bench_function("fig10_phase_types", |b| b.iter(|| black_box(figures::fig10(&runs))));
    c.bench_function("fig11_allocation", |b| {
        b.iter(|| black_box(figures::fig11(&runs[cc_sp], 20, 21)))
    });
    c.bench_function("fig14_15_scatter", |b| b.iter(|| black_box(figures::fig14_15(&runs[wc_sp]))));
    // Figs. 12–13 re-profile 4 workloads × 8 inputs; bench one reduced pass.
    c.bench_function("fig12_13_sensitivity_one_workload", |b| {
        b.iter(|| {
            let train = harness::run_workload(
                WorkloadId {
                    benchmark: Benchmark::ConnectedComponents,
                    framework: Framework::Spark,
                },
                &cfg,
            );
            black_box(train.analysis.k())
        })
    });
}

criterion_group!(
    name = figures_bench;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_figures
);
criterion_main!(figures_bench);
