//! Criterion benchmarks for the end-to-end pipeline stages: profiling a
//! workload on the machine model, phase formation, point selection, and
//! reference-input classification.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use simprof_core::{classify_units, form_phases, select_points, SimProf, SimProfConfig};
use simprof_stats::{choose_k, seeded, silhouette_score_cached, DistCache, Matrix};
use simprof_workloads::{Benchmark, Framework, WorkloadConfig};

fn config() -> SimProfConfig {
    SimProfConfig { seed: 11, ..Default::default() }
}

fn bench_pipeline(c: &mut Criterion) {
    let wl = WorkloadConfig::tiny(11);

    c.bench_function("pipeline/profile wc_sp (tiny)", |b| {
        b.iter(|| black_box(Benchmark::WordCount.run(Framework::Spark, &wl)))
    });

    let trace = Benchmark::WordCount.run(Framework::Spark, &wl);
    c.bench_function("pipeline/form_phases", |b| {
        b.iter(|| black_box(form_phases(black_box(&trace), &config())))
    });

    let analysis = SimProf::new(config()).analyze(&trace).expect("synthetic trace is valid");
    c.bench_function("pipeline/select_points n=20", |b| {
        b.iter(|| {
            black_box(select_points(
                black_box(&analysis.cpis),
                &analysis.model.assignments,
                analysis.k(),
                20,
                &mut seeded(5),
            ))
        })
    });

    c.bench_function("pipeline/required_size 2%", |b| {
        b.iter(|| black_box(analysis.required_size(3.0, 0.02)))
    });

    let reference = Benchmark::WordCount.run(Framework::Spark, &WorkloadConfig::tiny(12));
    c.bench_function("pipeline/classify_units (reference input)", |b| {
        b.iter(|| black_box(classify_units(black_box(&analysis.model), black_box(&reference))))
    });

    c.bench_function("pipeline/analyze end-to-end", |b| {
        b.iter(|| black_box(SimProf::new(config()).analyze(black_box(&trace)).unwrap()))
    });

    // The k-selection sweep and its shared distance cache in isolation.
    let rows: Vec<Vec<f64>> = (0..240)
        .map(|i| {
            (0..24)
                .map(|j| if j % 4 == i % 4 { 6.0 } else { 0.3 + (i * j % 7) as f64 * 0.05 })
                .collect()
        })
        .collect();
    let m = Matrix::from_rows(&rows);
    c.bench_function("pipeline/choose_k sweep (cached+warm)", |b| {
        b.iter(|| black_box(choose_k(black_box(&m), 10, 0.9, 0.25, 11)))
    });
    let cache = DistCache::build(&m);
    let assignments: Vec<usize> = (0..240).map(|i| i % 4).collect();
    c.bench_function("pipeline/silhouette from cache", |b| {
        b.iter(|| black_box(silhouette_score_cached(black_box(&cache), black_box(&assignments))))
    });
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_pipeline
);
criterion_main!(pipeline);
