//! The bench harness must produce bit-identical profiles and analyses at
//! every worker count (own process: these tests pin the global worker-count
//! override).

use simprof_bench::harness::run_workload;
use simprof_bench::EvalConfig;
use simprof_workloads::WorkloadId;

#[test]
fn harness_results_bit_identical_across_thread_counts() {
    let cfg = EvalConfig::tiny(7);
    for id in WorkloadId::all().into_iter().take(2) {
        rayon::set_threads(1);
        let one = run_workload(id, &cfg);
        rayon::set_threads(3);
        let many = run_workload(id, &cfg);
        rayon::set_threads(0);

        assert_eq!(one.label, many.label);
        assert_eq!(one.analysis.k(), many.analysis.k(), "{}", one.label);
        assert_eq!(
            one.analysis.model.assignments, many.analysis.model.assignments,
            "{}",
            one.label
        );
        assert_eq!(one.analysis.model.centers, many.analysis.model.centers, "{}", one.label);
        assert_eq!(one.analysis.model.k_scores.len(), many.analysis.model.k_scores.len());
        for (a, b) in one.analysis.model.k_scores.iter().zip(&many.analysis.model.k_scores) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "{} k = {}", one.label, a.0);
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&one.analysis.cpis), bits(&many.analysis.cpis), "{}", one.label);
    }
}
