//! Regression test: per-job allocation budgets must not attribute one
//! job's allocations to another. Two concurrent jobs with different caps
//! each see only their own peak.
//!
//! This binary installs [`TrackingAllocator`] globally; it holds only
//! this test so nothing else perturbs the slot counters.

use simprof_obs::{AllocSlot, ObsContext, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[test]
fn concurrent_jobs_with_different_caps_see_only_their_own_peak() {
    const MIB: usize = 1 << 20;
    // Job A budgets 16 MiB and allocates ~2; job B budgets 4 MiB and
    // allocates ~3. Under the old global peak either job could observe
    // the *sum* (~5 MiB) and B would falsely exceed its cap only when A
    // happened to run beside it.
    let cap_a = 16 * MIB;
    let cap_b = 4 * MIB;

    let barrier = std::sync::Barrier::new(2);
    let run = |bytes: usize| {
        let slot = AllocSlot::claim().expect("slot available");
        let ctx = ObsContext::new();
        ctx.set_alloc_slot(&slot);
        let installed = ctx.install();
        barrier.wait();
        // Hold the job's working set while the other job is also live so
        // a global high-water mark would see both at once.
        let work = std::hint::black_box(vec![0u8; bytes]);
        barrier.wait();
        drop(work);
        barrier.wait();
        drop(installed);
        ctx.stop();
        slot.peak_bytes()
    };

    let (peak_a, peak_b) = std::thread::scope(|s| {
        let a = s.spawn(|| run(2 * MIB));
        let b = s.spawn(|| run(3 * MIB));
        (a.join().unwrap(), b.join().unwrap())
    });

    assert!(peak_a >= 2 * MIB, "job A's own allocation registers: {peak_a}");
    assert!(peak_b >= 3 * MIB, "job B's own allocation registers: {peak_b}");
    // Isolation: neither peak includes the other job's working set. The
    // slack term covers the jobs' incidental small allocations.
    assert!(peak_a < 2 * MIB + MIB / 2, "job B's 3 MiB bled into job A: {peak_a}");
    assert!(peak_b < 3 * MIB + MIB / 2, "job A's 2 MiB bled into job B: {peak_b}");
    // Budget verdicts are therefore per-job: both jobs fit their own cap,
    // and job B's verdict is unaffected by job A running beside it.
    assert!(peak_a <= cap_a);
    assert!(peak_b <= cap_b);
}
