//! Regression test: `Session::begin()` re-bases the peak-allocation
//! high-water mark, so a session's reported peak covers only its own
//! allocations, not a previous run's.
//!
//! This binary installs [`TrackingAllocator`] globally (it is the only
//! test in the file, so nothing else perturbs the counters).

use simprof_obs::{current_alloc_bytes, peak_alloc_bytes, Session, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[test]
fn session_begin_rebaselines_peak() {
    const SPIKE: usize = 8 << 20;

    // Leave a large high-water mark from "the previous run".
    let spike = std::hint::black_box(vec![0u8; SPIKE]);
    drop(spike);
    assert!(
        peak_alloc_bytes() >= current_alloc_bytes() + SPIKE,
        "spike must register as the peak before the session starts"
    );

    let session = Session::begin().expect("no concurrent session in this binary");
    let baseline = current_alloc_bytes();
    assert!(
        peak_alloc_bytes() < baseline + SPIKE / 2,
        "begin() must re-base the peak: got {} over a baseline of {}",
        peak_alloc_bytes(),
        baseline
    );

    // The session's own allocations still raise the peak normally.
    let work = std::hint::black_box(vec![0u8; SPIKE / 4]);
    assert!(peak_alloc_bytes() >= baseline + SPIKE / 4);
    drop(work);
    drop(session.finish());
}
