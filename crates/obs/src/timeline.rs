//! Chrome-trace / Perfetto timeline export.
//!
//! [`chrome_trace`] converts a [`RunReport`] into the Trace Event JSON
//! format that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly:
//!
//! * every span becomes a `ph: "B"` / `ph: "E"` slice pair on its
//!   thread's track (`tid` = the obs thread id, so rayon-shim worker
//!   spans land on their own rows instead of vanishing),
//! * every thread gets a `ph: "M"` `thread_name` metadata record
//!   (`main` for thread 0, `worker-N` otherwise),
//! * every time series in the metrics snapshot becomes a `ph: "C"`
//!   counter track (quanta, cumulative units, live heap bytes…).
//!
//! Timestamps are microseconds (the format's native unit) re-based to the
//! session's first span. Emission walks each thread's spans in entry
//! order, closing every slice before its next sibling opens, so B/E pairs
//! are balanced and properly nested per `tid` by construction —
//! `report_check` re-validates this on every CI run.

use std::collections::BTreeMap;
use std::path::Path;

use serde_json::Value;

use crate::report::{RunReport, SpanNode};

/// The fixed `pid` for the whole (single-process) run.
const PID: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Emits the `B`/`E` pair for `node` and, between them, its children.
///
/// `cursor` is the thread's emission clock: every emitted timestamp is
/// clamped to be ≥ the previous one on the same `tid`, so clock-granularity
/// artifacts (a child's recorded end landing a microsecond past its
/// parent's) can never produce an out-of-order or mis-nested stream.
fn emit_span(node: &SpanNode, cursor: &mut u64, out: &mut Vec<Value>) {
    let start = node.start_us.max(*cursor);
    *cursor = start;
    out.push(obj(vec![
        ("name", Value::from(node.name.as_str())),
        ("cat", Value::from("span")),
        ("ph", Value::from("B")),
        ("ts", Value::from(start)),
        ("pid", Value::from(PID)),
        ("tid", Value::from(node.thread as u64)),
    ]));
    for child in &node.children {
        emit_span(child, cursor, out);
    }
    let end = (node.start_us + node.elapsed_us).max(*cursor);
    *cursor = end;
    out.push(obj(vec![
        ("name", Value::from(node.name.as_str())),
        ("ph", Value::from("E")),
        ("ts", Value::from(end)),
        ("pid", Value::from(PID)),
        ("tid", Value::from(node.thread as u64)),
    ]));
}

/// Converts a run report into a Trace Event JSON document
/// (`{"traceEvents": [...]}`).
pub fn chrome_trace(report: &RunReport) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Group root spans by thread, preserving entry order within each.
    let mut roots_by_thread: BTreeMap<usize, Vec<&SpanNode>> = BTreeMap::new();
    for root in &report.spans {
        roots_by_thread.entry(root.thread).or_default().push(root);
    }

    // Thread-name metadata first, one per track.
    for &thread in roots_by_thread.keys() {
        let label = if thread == 0 { "main".to_owned() } else { format!("worker-{thread}") };
        events.push(obj(vec![
            ("name", Value::from("thread_name")),
            ("ph", Value::from("M")),
            ("ts", Value::from(0u64)),
            ("pid", Value::from(PID)),
            ("tid", Value::from(thread as u64)),
            ("args", obj(vec![("name", Value::from(label))])),
        ]));
    }

    // Slices: per thread, roots in entry order. Sibling roots are emitted
    // open-to-close sequentially, so each tid's B/E stream stays nested.
    for roots in roots_by_thread.values() {
        let mut cursor = 0u64;
        for root in roots {
            emit_span(root, &mut cursor, &mut events);
        }
    }

    // Counter tracks from the time-series snapshot.
    for (name, series) in &report.metrics.timeseries {
        for sample in &series.samples {
            events.push(obj(vec![
                ("name", Value::from(name.as_str())),
                ("ph", Value::from("C")),
                ("ts", Value::from(sample.ts_us)),
                ("pid", Value::from(PID)),
                ("args", obj(vec![("value", Value::from(sample.value))])),
            ]));
        }
    }

    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::from("ms")),
        (
            "otherData",
            obj(vec![
                ("generator", Value::from("simprof-obs")),
                ("report_version", Value::from(report.version as u64)),
            ]),
        ),
    ])
}

/// Renders [`chrome_trace`] to a file.
pub fn write_chrome_trace(report: &RunReport, path: &Path) -> Result<(), String> {
    write_timeline_doc(&chrome_trace(report), path)
}

/// One job laid out on a worker's track of a fleet timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSlice {
    /// Slice label (the job id).
    pub name: String,
    /// 0-based worker-thread index the job ran on (the `tid`).
    pub worker: usize,
    /// Microseconds from the service clock's epoch to job start.
    pub start_us: u64,
    /// Microseconds from the epoch to job end (clamped up to
    /// `start_us` if a scripted clock makes them equal or inverted).
    pub end_us: u64,
}

/// Converts a fleet's job slices into a Trace Event JSON document: one
/// track per worker thread, one `B`/`E` slice pair per job. Jobs on the
/// same worker ran sequentially, so sorting each track by start time
/// yields balanced, non-overlapping slices; the same cursor clamp as
/// [`chrome_trace`] absorbs any clock-granularity overlap.
pub fn fleet_chrome_trace(slices: &[JobSlice]) -> Value {
    let mut by_worker: BTreeMap<usize, Vec<&JobSlice>> = BTreeMap::new();
    for slice in slices {
        by_worker.entry(slice.worker).or_default().push(slice);
    }
    let mut events: Vec<Value> = Vec::new();
    for &worker in by_worker.keys() {
        events.push(obj(vec![
            ("name", Value::from("thread_name")),
            ("ph", Value::from("M")),
            ("ts", Value::from(0u64)),
            ("pid", Value::from(PID)),
            ("tid", Value::from(worker as u64)),
            ("args", obj(vec![("name", Value::from(format!("worker-{worker}")))])),
        ]));
    }
    for track in by_worker.values_mut() {
        track.sort_by_key(|s| s.start_us);
        let mut cursor = 0u64;
        for slice in track.iter() {
            let start = slice.start_us.max(cursor);
            let end = slice.end_us.max(start);
            cursor = end;
            events.push(obj(vec![
                ("name", Value::from(slice.name.as_str())),
                ("cat", Value::from("job")),
                ("ph", Value::from("B")),
                ("ts", Value::from(start)),
                ("pid", Value::from(PID)),
                ("tid", Value::from(slice.worker as u64)),
            ]));
            events.push(obj(vec![
                ("name", Value::from(slice.name.as_str())),
                ("ph", Value::from("E")),
                ("ts", Value::from(end)),
                ("pid", Value::from(PID)),
                ("tid", Value::from(slice.worker as u64)),
            ]));
        }
    }
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::from("ms")),
        ("otherData", obj(vec![("generator", Value::from("simprof-obs"))])),
    ])
}

/// Renders [`fleet_chrome_trace`] to a file.
pub fn write_fleet_timeline(slices: &[JobSlice], path: &Path) -> Result<(), String> {
    write_timeline_doc(&fleet_chrome_trace(slices), path)
}

fn write_timeline_doc(doc: &Value, path: &Path) -> Result<(), String> {
    let text = serde_json::to_string(doc).map_err(|e| format!("cannot serialize timeline: {e}"))?;
    std::fs::write(path, text + "\n")
        .map_err(|e| format!("cannot write timeline {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsSnapshot, TimePoint, TimeSeries};
    use crate::span::SpanRecord;

    fn record(
        id: u64,
        parent: Option<u64>,
        name: &str,
        thread: usize,
        start_us: u64,
    ) -> SpanRecord {
        SpanRecord { id, parent, name: name.to_owned(), thread, start_us, elapsed_us: 10 }
    }

    fn field<'a>(event: &'a Value, key: &str) -> &'a Value {
        event.get(key).unwrap_or_else(|| panic!("event missing key {key}"))
    }

    #[test]
    fn spans_become_balanced_nested_slices_per_tid() {
        let records = vec![
            record(1, None, "root", 0, 100),
            record(2, Some(1), "child", 0, 103),
            record(3, None, "worker_task", 1, 105),
        ];
        let mut metrics = MetricsSnapshot::default();
        metrics.timeseries.insert(
            "profiler.units_total".into(),
            TimeSeries {
                total: 2,
                samples: vec![
                    TimePoint { ts_us: 4, value: 1.0 },
                    TimePoint { ts_us: 8, value: 2.0 },
                ],
            },
        );
        let report = RunReport::assemble(records, metrics);
        let doc = chrome_trace(&report);
        let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");

        // Per-tid B/E balance with LIFO nesting.
        let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        let mut counters = 0usize;
        let mut metas = 0usize;
        for e in events {
            let ph = field(e, "ph").as_str().unwrap();
            match ph {
                "B" => {
                    let tid = field(e, "tid").as_u64().unwrap();
                    let name = field(e, "name").as_str().unwrap().to_owned();
                    stacks.entry(tid).or_default().push(name);
                }
                "E" => {
                    let tid = field(e, "tid").as_u64().unwrap();
                    let name = field(e, "name").as_str().unwrap();
                    assert_eq!(stacks.get_mut(&tid).and_then(Vec::pop).as_deref(), Some(name));
                }
                "C" => counters += 1,
                "M" => metas += 1,
                other => panic!("unexpected ph {other}"),
            }
        }
        assert!(stacks.values().all(Vec::is_empty), "balanced B/E per tid");
        assert_eq!(counters, 2, "one C event per time-series sample");
        assert_eq!(metas, 2, "thread_name metadata for both tids");

        // Worker slice present on its own tid.
        assert!(events.iter().any(|e| {
            field(e, "ph").as_str() == Some("B")
                && field(e, "name").as_str() == Some("worker_task")
                && field(e, "tid").as_u64() == Some(1)
        }));
    }

    #[test]
    fn fleet_slices_land_on_worker_tracks_balanced() {
        let slices = vec![
            JobSlice { name: "job-b".into(), worker: 1, start_us: 5, end_us: 9 },
            JobSlice { name: "job-a".into(), worker: 0, start_us: 0, end_us: 7 },
            // Scripted clocks can collapse start == end; still balanced.
            JobSlice { name: "job-c".into(), worker: 0, start_us: 7, end_us: 7 },
        ];
        let doc = fleet_chrome_trace(&slices);
        let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        let mut metas = 0usize;
        for e in events {
            match field(e, "ph").as_str().unwrap() {
                "M" => metas += 1,
                "B" => stacks
                    .entry(field(e, "tid").as_u64().unwrap())
                    .or_default()
                    .push(field(e, "name").as_str().unwrap().to_owned()),
                "E" => {
                    let tid = field(e, "tid").as_u64().unwrap();
                    let name = field(e, "name").as_str().unwrap();
                    assert_eq!(stacks.get_mut(&tid).and_then(Vec::pop).as_deref(), Some(name));
                }
                other => panic!("unexpected ph {other}"),
            }
        }
        assert_eq!(metas, 2, "one thread_name per worker track");
        assert!(stacks.values().all(Vec::is_empty), "balanced B/E per worker");
    }

    #[test]
    fn child_end_never_exceeds_parent_slice() {
        // Clock granularity can make a child's recorded end land past its
        // parent's; the parent's E must still close after the child's.
        let mut parent = record(1, None, "p", 0, 0);
        parent.elapsed_us = 5;
        let mut child = record(2, Some(1), "c", 0, 2);
        child.elapsed_us = 9; // ends at 11 > parent's own 5
        let report = RunReport::assemble(vec![parent, child], MetricsSnapshot::default());
        let doc = chrome_trace(&report);
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let ends: Vec<(String, u64)> = events
            .iter()
            .filter(|e| field(e, "ph").as_str() == Some("E"))
            .map(|e| {
                (field(e, "name").as_str().unwrap().to_owned(), field(e, "ts").as_u64().unwrap())
            })
            .collect();
        assert_eq!(ends, vec![("c".to_owned(), 11), ("p".to_owned(), 11)]);
    }
}
