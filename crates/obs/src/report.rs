//! The run report: one versioned JSON document per observed run.
//!
//! A [`RunReport`] carries everything a session collected — the span tree
//! and the metric snapshot — plus caller-attached *sections* (free-form
//! JSON values keyed by name: the phase summary, the Eq. 1 allocation
//! table, the estimate). The document is versioned so downstream tooling
//! (CI schema checks, trend dashboards) can evolve without guessing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;

/// Version of the report schema emitted by [`RunReport::assemble`].
///
/// Version history: 1 = span tree + counters/gauges/min-max histograms;
/// 2 = histogram summaries gained p50/p95/p99 and the metrics snapshot
/// gained the `timeseries` map (both ignorable by v1 readers; v1
/// documents load under v2 via `serde(default)`).
pub const REPORT_VERSION: u32 = 2;

/// One node of the span tree: a completed span and the spans it enclosed
/// on the same thread, in entry order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// The span's label.
    pub name: String,
    /// Small sequential id of the thread the span ran on.
    pub thread: usize,
    /// Microseconds from the session's first span to this span's entry.
    pub start_us: u64,
    /// Wall-clock the span covered, in microseconds (monotonic).
    pub elapsed_us: u64,
    /// Directly enclosed spans, in entry order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first search for the first node named `name` (self included).
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// The versioned run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`REPORT_VERSION`] for documents this build emits).
    pub version: u32,
    /// The producing tool, for provenance (`simprof-obs`).
    pub generator: String,
    /// Root spans (one subtree per top-level span; worker threads' spans
    /// root at their own thread), in entry order.
    pub spans: Vec<SpanNode>,
    /// The session's metric snapshot.
    pub metrics: MetricsSnapshot,
    /// Caller-attached document sections (phase summary, allocation
    /// table, …), keyed by section name.
    pub sections: BTreeMap<String, serde_json::Value>,
}

impl RunReport {
    /// Builds the report skeleton from a drained session. Start offsets
    /// are re-based so the earliest span starts at 0.
    pub(crate) fn assemble(records: Vec<SpanRecord>, metrics: MetricsSnapshot) -> Self {
        Self {
            version: REPORT_VERSION,
            generator: "simprof-obs".to_owned(),
            spans: build_tree(records),
            metrics,
            sections: BTreeMap::new(),
        }
    }

    /// Attaches (or replaces) a named section; returns `self` for chaining.
    pub fn with_section(mut self, name: &str, value: serde_json::Value) -> Self {
        self.sections.insert(name.to_owned(), value);
        self
    }

    /// Depth-first search across all root spans for a node named `name`.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Total wall-clock attributed to each thread's root spans, in
    /// microseconds, keyed by thread id (rendered as a string for JSON).
    pub fn thread_totals_us(&self) -> BTreeMap<String, u64> {
        let mut totals = BTreeMap::new();
        for s in &self.spans {
            *totals.entry(s.thread.to_string()).or_insert(0) += s.elapsed_us;
        }
        totals
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).map(|s| s + "\n").unwrap_or_default()
    }
}

/// Nests completed records into trees by parent link. Records whose parent
/// never completed (still open at session end, or closed in an earlier
/// session) become roots. Sibling order is entry order (span ids are
/// assigned at entry).
fn build_tree(mut records: Vec<SpanRecord>) -> Vec<SpanNode> {
    records.sort_by_key(|r| r.id);
    let base_us = records.iter().map(|r| r.start_us).min().unwrap_or(0);
    let present: std::collections::BTreeSet<u64> = records.iter().map(|r| r.id).collect();

    // children_of[parent_id] = record ids, in entry order.
    let mut children_of: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (idx, r) in records.iter().enumerate() {
        match r.parent {
            Some(p) if present.contains(&p) => children_of.entry(p).or_default().push(idx),
            _ => roots.push(idx),
        }
    }

    fn build(
        idx: usize,
        records: &[SpanRecord],
        children_of: &BTreeMap<u64, Vec<usize>>,
        base_us: u64,
    ) -> SpanNode {
        let r = &records[idx];
        let children = children_of
            .get(&r.id)
            .map(|ids| ids.iter().map(|&i| build(i, records, children_of, base_us)).collect())
            .unwrap_or_default();
        SpanNode {
            name: r.name.clone(),
            thread: r.thread,
            start_us: r.start_us - base_us,
            elapsed_us: r.elapsed_us,
            children,
        }
    }

    roots.into_iter().map(|idx| build(idx, &records, &children_of, base_us)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: Option<u64>, name: &str, start_us: u64) -> SpanRecord {
        SpanRecord { id, parent, name: name.to_owned(), thread: 0, start_us, elapsed_us: 5 }
    }

    #[test]
    fn tree_nests_by_parent_and_rebases_time() {
        let records = vec![
            record(2, Some(1), "child_a", 110),
            record(3, Some(1), "child_b", 120),
            record(1, None, "root", 100),
        ];
        let report = RunReport::assemble(records, MetricsSnapshot::default());
        assert_eq!(report.spans.len(), 1);
        let root = &report.spans[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.start_us, 0, "earliest span re-based to zero");
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["child_a", "child_b"], "siblings in entry order");
        assert_eq!(root.children[0].start_us, 10);
    }

    #[test]
    fn orphaned_spans_become_roots() {
        // Parent id 9 never completed: the child must surface, not vanish.
        let records = vec![record(4, Some(9), "orphan", 50)];
        let report = RunReport::assemble(records, MetricsSnapshot::default());
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "orphan");
    }

    #[test]
    fn report_serde_roundtrip_with_sections() {
        let records = vec![record(1, None, "top", 0)];
        let report = RunReport::assemble(records, MetricsSnapshot::default())
            .with_section(
                "allocation",
                serde_json::json!([serde_json::json!({"phase": 0, "n_h": 3})]),
            )
            .with_section("note", serde_json::json!("hello"));
        let text = report.to_json_pretty();
        assert!(text.ends_with('\n'));
        let back: RunReport = serde_json::from_str(text.trim_end()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.version, REPORT_VERSION);
        assert!(back.sections.contains_key("allocation"));
    }

    #[test]
    fn thread_totals_sum_roots_per_thread() {
        let mut a = record(1, None, "a", 0);
        a.thread = 0;
        let mut b = record(2, None, "b", 0);
        b.thread = 1;
        let mut c = record(3, None, "c", 0);
        c.thread = 1;
        let report = RunReport::assemble(vec![a, b, c], MetricsSnapshot::default());
        let totals = report.thread_totals_us();
        assert_eq!(totals["0"], 5);
        assert_eq!(totals["1"], 10);
    }
}
