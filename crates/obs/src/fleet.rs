//! The fleet report: one versioned JSON document per *service run*.
//!
//! Where a [`crate::RunReport`] describes one job, a [`FleetReport`]
//! merges every job a `simprof serve` invocation ran: per-tenant
//! queue-wait and run-time [`Log2Histogram`]s (summarized to
//! p50/p95/p99), pool-share and max-wait fairness metrics, per-job
//! allocation peaks, per-shard stored-vs-raw compression, and the
//! store's per-tenant byte usage. The service layer gathers the
//! per-job facts (it owns the clock and the store); this module owns
//! the schema and the deterministic aggregation.
//!
//! # Determinism contract
//!
//! [`FleetReport::assemble`] is a pure function of its inputs: jobs are
//! sorted by id, tenants live in a [`BTreeMap`], and no field derives
//! from worker count, wall clock, or event ordering. Feed it
//! clock-scripted durations and byte counts from deterministic shards
//! and the serialized report is byte-identical at any concurrency
//! (`tests/service_isolation.rs` pins this at 1-vs-K workers).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::hist::Log2Histogram;
use crate::metrics::HistogramSummary;

/// Version of the fleet-report schema emitted by
/// [`FleetReport::assemble`].
pub const FLEET_REPORT_VERSION: u32 = 1;

/// One job's contribution to the fleet report (also its serialized
/// per-job entry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJob {
    /// The job's id (shard file stem).
    pub id: String,
    /// Tenant the job is accounted to.
    pub tenant: String,
    /// Workload label that ran.
    pub workload: String,
    /// Whether the job sealed and admitted its shard.
    pub ok: bool,
    /// The job's error, when `ok` is false.
    pub error: Option<String>,
    /// Sampling units in the sealed shard (0 on failure).
    pub units: u64,
    /// Sealed shard size in bytes (0 on failure).
    pub trace_bytes: u64,
    /// Peak bytes charged to the job's allocation slot.
    pub peak_alloc_bytes: u64,
    /// Microseconds the job waited between queueing and start.
    pub queue_us: u64,
    /// Microseconds the job ran for.
    pub run_us: u64,
    /// Stored (on-disk) payload bytes across the shard's frames.
    pub stored_payload_bytes: u64,
    /// Decoded payload bytes across the same frames.
    pub raw_payload_bytes: u64,
    /// `stored / raw` (1.0 when the shard has no payload bytes).
    pub compression: f64,
}

/// Fairness and load statistics for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Jobs this run accounted to the tenant.
    pub jobs: u64,
    /// How many of them failed.
    pub failed: u64,
    /// Bytes the store currently holds for the tenant (all runs, not
    /// just this one — equals `TraceStore::tenant_bytes`).
    pub store_bytes: u64,
    /// Queue-wait distribution (microseconds), p50/p95/p99 included.
    pub queue_wait_us: HistogramSummary,
    /// Run-time distribution (microseconds), p50/p95/p99 included.
    pub run_time_us: HistogramSummary,
    /// The tenant's share of total fleet run time (0.0 when the fleet
    /// recorded no run time at all).
    pub pool_share: f64,
    /// The tenant's worst queue wait, in microseconds.
    pub max_wait_us: u64,
}

/// Whole-fleet totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetTotals {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs that sealed and admitted a shard.
    pub ok: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Sampling units across all sealed shards.
    pub units: u64,
    /// Bytes across all sealed shards.
    pub trace_bytes: u64,
    /// Total run time across all jobs, in microseconds.
    pub run_us: u64,
}

/// The versioned fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Schema version ([`FLEET_REPORT_VERSION`] for documents this
    /// build emits).
    pub version: u32,
    /// The producing tool, for provenance (`simprof-obs`).
    pub generator: String,
    /// Whole-fleet totals.
    pub totals: FleetTotals,
    /// Per-tenant fairness and load statistics, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Per-job entries, sorted by job id.
    pub jobs: Vec<FleetJob>,
}

/// Per-tenant accumulator used while folding jobs in.
#[derive(Default)]
struct TenantAcc {
    jobs: u64,
    failed: u64,
    store_bytes: u64,
    queue: Log2Histogram,
    run: Log2Histogram,
    run_us_total: u64,
    max_wait_us: u64,
}

impl FleetReport {
    /// Merges per-job facts and the store's per-tenant byte usage into
    /// one report. `store_tenant_bytes` seeds the tenant map, so tenants
    /// that hold shards from earlier runs appear even with zero jobs
    /// this run. Input order of `jobs` does not matter.
    pub fn assemble(mut jobs: Vec<FleetJob>, store_tenant_bytes: BTreeMap<String, u64>) -> Self {
        jobs.sort_by(|a, b| a.id.cmp(&b.id));
        for job in &mut jobs {
            job.compression = if job.raw_payload_bytes == 0 {
                1.0
            } else {
                job.stored_payload_bytes as f64 / job.raw_payload_bytes as f64
            };
        }

        let mut accs: BTreeMap<String, TenantAcc> = BTreeMap::new();
        for (tenant, bytes) in store_tenant_bytes {
            accs.entry(tenant).or_default().store_bytes = bytes;
        }
        let mut totals = FleetTotals { jobs: jobs.len() as u64, ..FleetTotals::default() };
        for job in &jobs {
            let acc = accs.entry(job.tenant.clone()).or_default();
            acc.jobs += 1;
            if job.ok {
                totals.ok += 1;
                totals.units += job.units;
                totals.trace_bytes += job.trace_bytes;
            } else {
                totals.failed += 1;
                acc.failed += 1;
            }
            acc.queue.observe(job.queue_us as f64);
            acc.run.observe(job.run_us as f64);
            acc.run_us_total += job.run_us;
            acc.max_wait_us = acc.max_wait_us.max(job.queue_us);
            totals.run_us += job.run_us;
        }

        let tenants = accs
            .into_iter()
            .map(|(tenant, acc)| {
                let pool_share = if totals.run_us == 0 {
                    0.0
                } else {
                    acc.run_us_total as f64 / totals.run_us as f64
                };
                let stats = TenantStats {
                    jobs: acc.jobs,
                    failed: acc.failed,
                    store_bytes: acc.store_bytes,
                    queue_wait_us: HistogramSummary::of(&acc.queue),
                    run_time_us: HistogramSummary::of(&acc.run),
                    pool_share,
                    max_wait_us: acc.max_wait_us,
                };
                (tenant, stats)
            })
            .collect();

        Self {
            version: FLEET_REPORT_VERSION,
            generator: "simprof-obs".to_owned(),
            totals,
            tenants,
            jobs,
        }
    }

    /// Serializes the report as pretty-printed JSON (trailing newline,
    /// like [`crate::RunReport::to_json_pretty`]).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).map(|s| s + "\n").unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str, tenant: &str, queue_us: u64, run_us: u64) -> FleetJob {
        FleetJob {
            id: id.to_owned(),
            tenant: tenant.to_owned(),
            workload: "wc_sp".to_owned(),
            ok: true,
            error: None,
            units: 10,
            trace_bytes: 100,
            peak_alloc_bytes: 0,
            queue_us,
            run_us,
            stored_payload_bytes: 50,
            raw_payload_bytes: 200,
            compression: 0.0,
        }
    }

    #[test]
    fn assemble_is_input_order_independent() {
        let a = vec![job("b", "t1", 5, 10), job("a", "t0", 3, 30), job("c", "t1", 7, 60)];
        let mut b = a.clone();
        b.reverse();
        let bytes = BTreeMap::from([("t0".to_owned(), 100u64), ("t1".to_owned(), 200u64)]);
        let ra = FleetReport::assemble(a, bytes.clone());
        let rb = FleetReport::assemble(b, bytes);
        assert_eq!(ra.to_json_pretty(), rb.to_json_pretty());
        let ids: Vec<&str> = ra.jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "c"], "jobs sorted by id");
    }

    #[test]
    fn tenant_stats_fold_fairness_and_failures() {
        let mut failed = job("z", "t1", 9, 40);
        failed.ok = false;
        failed.error = Some("boom".into());
        failed.units = 0;
        failed.trace_bytes = 0;
        let jobs = vec![job("a", "t0", 3, 30), job("m", "t1", 5, 10), failed];
        let report = FleetReport::assemble(jobs, BTreeMap::new());

        assert_eq!(report.version, FLEET_REPORT_VERSION);
        assert_eq!(report.totals.jobs, 3);
        assert_eq!(report.totals.ok, 2);
        assert_eq!(report.totals.failed, 1);
        assert_eq!(report.totals.run_us, 80);

        let t0 = &report.tenants["t0"];
        assert_eq!(t0.jobs, 1);
        assert_eq!(t0.pool_share, 30.0 / 80.0);
        assert_eq!(t0.max_wait_us, 3);
        let t1 = &report.tenants["t1"];
        assert_eq!(t1.jobs, 2);
        assert_eq!(t1.failed, 1);
        assert_eq!(t1.pool_share, 50.0 / 80.0);
        assert_eq!(t1.max_wait_us, 9);
        assert_eq!(t1.queue_wait_us.count, 2, "failed jobs still count toward fairness");
    }

    #[test]
    fn compression_is_derived_and_safe_on_empty_shards() {
        let mut empty = job("e", "t0", 0, 0);
        empty.stored_payload_bytes = 0;
        empty.raw_payload_bytes = 0;
        let report = FleetReport::assemble(vec![empty, job("f", "t0", 0, 0)], BTreeMap::new());
        assert_eq!(report.jobs[0].compression, 1.0, "no payload → neutral ratio");
        assert_eq!(report.jobs[1].compression, 0.25);
    }

    #[test]
    fn store_only_tenants_appear_with_zero_jobs() {
        let bytes = BTreeMap::from([("idle".to_owned(), 4096u64)]);
        let report = FleetReport::assemble(vec![job("a", "busy", 1, 2)], bytes);
        let idle = &report.tenants["idle"];
        assert_eq!(idle.jobs, 0);
        assert_eq!(idle.store_bytes, 4096);
        assert_eq!(idle.queue_wait_us.count, 0);
        assert_eq!(idle.queue_wait_us.p99, 0.0, "empty histogram quantiles stay defined");
        assert_eq!(idle.pool_share, 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let report = FleetReport::assemble(
            vec![job("a", "t0", 1, 2)],
            BTreeMap::from([("t0".to_owned(), 100u64)]),
        );
        let text = report.to_json_pretty();
        assert!(text.ends_with('\n'));
        let back: FleetReport = serde_json::from_str(text.trim_end()).unwrap();
        assert_eq!(back, report);
    }
}
