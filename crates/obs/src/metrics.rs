//! The metrics registry: named counters, gauges, histograms, and
//! ring-buffer time series.
//!
//! Metrics are write-only from the pipeline's point of view: hot paths
//! record (`counter_add`, `gauge_set`, `histogram_observe`,
//! `timeseries_push`) and only the context-ending report ever reads.
//! Nothing in the sampling pipeline consults a metric, which is what keeps
//! the determinism contract intact (DESIGN.md §11).
//!
//! Each [`crate::ObsContext`] owns its own [`MetricsStore`]; the free
//! functions here resolve the calling thread's current context, so two
//! concurrent jobs tally into disjoint registries.
//!
//! Histograms are [`Log2Histogram`]s, so snapshots carry p50/p95/p99
//! quantile estimates (within one log2 bucket width of exact). Time
//! series are bounded ring buffers ([`RING_CAP`] samples): pushes past
//! the cap overwrite the oldest sample, so a long run keeps its most
//! recent trajectory at fixed memory cost.
//!
//! With no recording context every call is a single relaxed atomic load.
//! When an event sink is installed on the resolved context,
//! counter/gauge/histogram writes also stream [`crate::events::EventKind`]
//! records.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};

use crate::context;
use crate::events::EventKind;
use crate::hist::Log2Histogram;
use crate::span;

enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Log2Histogram),
}

/// Capacity of each time-series ring buffer. Once a series has this many
/// samples, each push drops the oldest.
pub const RING_CAP: usize = 512;

/// A time-series ring buffer: most recent [`RING_CAP`] samples plus the
/// total number of pushes ever made.
struct Ring {
    total: u64,
    /// Physical buffer; once full, `next` is the logical start.
    buf: Vec<TimePoint>,
    next: usize,
}

impl Ring {
    fn push(&mut self, sample: TimePoint) {
        self.total += 1;
        if self.buf.len() < RING_CAP {
            self.buf.push(sample);
        } else {
            self.buf[self.next] = sample;
            self.next = (self.next + 1) % RING_CAP;
        }
    }

    fn snapshot(&self) -> TimeSeries {
        let mut samples = Vec::with_capacity(self.buf.len());
        samples.extend_from_slice(&self.buf[self.next..]);
        samples.extend_from_slice(&self.buf[..self.next]);
        TimeSeries { total: self.total, samples }
    }
}

/// One context's metric state: the registry (counters, gauges,
/// histograms) plus its time-series rings.
pub(crate) struct MetricsStore {
    registry: Mutex<BTreeMap<String, Metric>>,
    series: Mutex<BTreeMap<String, Ring>>,
}

impl MetricsStore {
    pub(crate) fn new() -> Self {
        Self { registry: Mutex::new(BTreeMap::new()), series: Mutex::new(BTreeMap::new()) }
    }

    fn registry_lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        self.registry.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn series_lock(&self) -> MutexGuard<'_, BTreeMap<String, Ring>> {
        self.series.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `delta` to the named counter, returning the running total.
    fn counter_add(&self, name: &str, delta: u64) -> u64 {
        let mut reg = self.registry_lock();
        match reg.get_mut(name) {
            Some(Metric::Counter(v)) => {
                *v += delta;
                *v
            }
            _ => {
                reg.insert(name.to_owned(), Metric::Counter(delta));
                delta
            }
        }
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.registry_lock().insert(name.to_owned(), Metric::Gauge(value));
    }

    fn histogram_observe(&self, name: &str, value: f64) {
        let mut reg = self.registry_lock();
        match reg.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(value),
            _ => {
                let mut h = Log2Histogram::new();
                h.observe(value);
                reg.insert(name.to_owned(), Metric::Histogram(h));
            }
        }
    }

    fn timeseries_push(&self, name: &str, value: f64) {
        let mut series = self.series_lock();
        // Stamp under the lock so each series' timestamps are
        // non-decreasing even when threads race to push.
        let sample = TimePoint { ts_us: span::now_us(), value };
        match series.get_mut(name) {
            Some(ring) => ring.push(sample),
            None => {
                let mut ring = Ring { total: 0, buf: Vec::new(), next: 0 };
                ring.push(sample);
                series.insert(name.to_owned(), ring);
            }
        }
    }

    /// Copies the store into a serializable snapshot.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.registry_lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in reg.iter() {
            match metric {
                Metric::Counter(v) => {
                    snap.counters.insert(name.clone(), *v);
                }
                Metric::Gauge(v) => {
                    snap.gauges.insert(name.clone(), *v);
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), HistogramSummary::of(h));
                }
            }
        }
        drop(reg);
        for (name, ring) in self.series_lock().iter() {
            snap.timeseries.insert(name.clone(), ring.snapshot());
        }
        snap
    }
}

/// Adds `delta` to the named counter (creating it at zero first) in the
/// calling thread's current context. Counters are monotone event tallies:
/// units profiled, faults injected….
pub fn counter_add(name: &str, delta: u64) {
    let Some(ctx) = context::current_recording() else {
        return;
    };
    let total = ctx.inner().metrics.counter_add(name, delta);
    if ctx.streaming() {
        ctx.emit(EventKind::Counter { name: name.to_owned(), delta, total });
    }
}

/// Sets the named gauge to `value` (last write wins) in the current
/// context. Gauges are point-in-time levels: chosen k, worker count,
/// trace size….
pub fn gauge_set(name: &str, value: f64) {
    let Some(ctx) = context::current_recording() else {
        return;
    };
    ctx.inner().metrics.gauge_set(name, value);
    if ctx.streaming() {
        ctx.emit(EventKind::Gauge { name: name.to_owned(), value });
    }
}

/// Folds `value` into the named [`Log2Histogram`] of the current context.
/// Histograms summarize per-event magnitudes: iterations per k-means run,
/// instructions per task….
pub fn histogram_observe(name: &str, value: f64) {
    let Some(ctx) = context::current_recording() else {
        return;
    };
    ctx.inner().metrics.histogram_observe(name, value);
    if ctx.streaming() {
        ctx.emit(EventKind::Hist { name: name.to_owned(), value });
    }
}

/// Appends a `(now, value)` sample to the named time series of the
/// current context, dropping the oldest sample once the ring holds
/// [`RING_CAP`]. Series trace levels over time: cumulative units closed,
/// live heap bytes….
pub fn timeseries_push(name: &str, value: f64) {
    let Some(ctx) = context::current_recording() else {
        return;
    };
    ctx.inner().metrics.timeseries_push(name, value);
}

/// Aggregated view of one histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations folded in.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// `sum / count`.
    pub mean: f64,
    /// Estimated median (within one log2 bucket width of exact).
    #[serde(default)]
    pub p50: f64,
    /// Estimated 95th percentile (same error bound).
    #[serde(default)]
    pub p95: f64,
    /// Estimated 99th percentile (same error bound).
    #[serde(default)]
    pub p99: f64,
}

impl HistogramSummary {
    /// Summarizes a [`Log2Histogram`].
    pub fn of(h: &Log2Histogram) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }
}

/// One `(timestamp, value)` sample of a time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Microseconds since the process span epoch.
    pub ts_us: u64,
    /// The sampled level.
    pub value: f64,
}

/// Snapshot of one time-series ring buffer: chronological samples plus
/// the total push count (which exceeds `samples.len()` once the ring has
/// wrapped).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Samples ever pushed (including overwritten ones).
    pub total: u64,
    /// The most recent samples, oldest first.
    pub samples: Vec<TimePoint>,
}

/// A point-in-time copy of one context's whole registry, grouped by
/// metric kind.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// All histograms, by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// All time series, by name (absent in version-1 reports).
    #[serde(default)]
    pub timeseries: BTreeMap<String, TimeSeries>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.count".into(), 42);
        snap.gauges.insert("b.level".into(), 1.5);
        snap.histograms.insert(
            "c.sizes".into(),
            HistogramSummary {
                count: 3,
                sum: 6.0,
                min: 1.0,
                max: 3.0,
                mean: 2.0,
                p50: 2.0,
                p95: 3.0,
                p99: 3.0,
            },
        );
        snap.timeseries.insert(
            "d.series".into(),
            TimeSeries { total: 2, samples: vec![TimePoint { ts_us: 1, value: 0.5 }] },
        );
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn version1_snapshot_without_new_fields_still_parses() {
        // A report written before quantiles/time series existed must load.
        let json = r#"{"counters":{"a":1},"gauges":{},"histograms":{"h":{"count":1,"sum":2.0,"min":2.0,"max":2.0,"mean":2.0}}}"#;
        let snap: MetricsSnapshot = serde_json::from_str(json).unwrap();
        assert_eq!(snap.counters["a"], 1);
        assert_eq!(snap.histograms["h"].p50, 0.0, "absent quantiles default");
        assert!(snap.timeseries.is_empty());
    }

    #[test]
    fn metric_kind_change_replaces_cleanly() {
        // A name reused with a different kind must not corrupt the
        // registry (last kind wins). Run inside a private context.
        let ctx = crate::ObsContext::new();
        let _installed = ctx.install();
        counter_add("shape.shift", 2);
        gauge_set("shape.shift", 9.0);
        let snap = ctx.finish_report();
        assert!(!snap.metrics.counters.contains_key("shape.shift"));
        assert_eq!(snap.metrics.gauges["shape.shift"], 9.0);
    }

    #[test]
    fn histogram_snapshot_carries_quantiles() {
        let ctx = crate::ObsContext::new();
        let _installed = ctx.install();
        for v in [1.0, 1.5, 3.0, 9.0, 40.0] {
            histogram_observe("q.sizes", v);
        }
        let snap = ctx.finish_report();
        let h = &snap.metrics.histograms["q.sizes"];
        assert_eq!(h.count, 5);
        // p50 targets the 3rd smallest (3.0, bucket [2,4)): upper edge 4.
        assert_eq!(h.p50, 4.0);
        // p99 targets the 5th (40.0, bucket [32,64)): 64 clamps to max.
        assert_eq!(h.p99, 40.0);
    }

    #[test]
    fn timeseries_ring_keeps_most_recent_samples() {
        let ctx = crate::ObsContext::new();
        let _installed = ctx.install();
        let n = RING_CAP + 7;
        for i in 0..n {
            timeseries_push("ring.series", i as f64);
        }
        let snap = ctx.finish_report();
        let ts = &snap.metrics.timeseries["ring.series"];
        assert_eq!(ts.total, n as u64);
        assert_eq!(ts.samples.len(), RING_CAP);
        assert_eq!(ts.samples[0].value, 7.0, "oldest 7 samples dropped");
        assert_eq!(ts.samples[RING_CAP - 1].value, (n - 1) as f64);
        for w in ts.samples.windows(2) {
            assert!(w[1].ts_us >= w[0].ts_us, "chronological order");
        }
    }
}
