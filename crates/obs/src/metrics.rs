//! The metrics registry: named counters, gauges, and histograms.
//!
//! Metrics are write-only from the pipeline's point of view: hot paths
//! record (`counter_add`, `gauge_set`, `histogram_observe`) and only the
//! session-ending report ever reads. Nothing in the sampling pipeline
//! consults a metric, which is what keeps the determinism contract intact
//! (DESIGN.md §11).
//!
//! With no active session every call is a single relaxed atomic load.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};

enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram { count: u64, sum: f64, min: f64, max: f64 },
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn registry_lock() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Adds `delta` to the named counter (creating it at zero first).
/// Counters are monotone event tallies: units profiled, faults injected….
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry_lock();
    match reg.get_mut(name) {
        Some(Metric::Counter(v)) => *v += delta,
        _ => {
            reg.insert(name.to_owned(), Metric::Counter(delta));
        }
    }
}

/// Sets the named gauge to `value` (last write wins). Gauges are
/// point-in-time levels: chosen k, worker count, trace size….
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    registry_lock().insert(name.to_owned(), Metric::Gauge(value));
}

/// Folds `value` into the named histogram (count / sum / min / max).
/// Histograms summarize per-event magnitudes: iterations per k-means run,
/// instructions per task….
pub fn histogram_observe(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry_lock();
    match reg.get_mut(name) {
        Some(Metric::Histogram { count, sum, min, max }) => {
            *count += 1;
            *sum += value;
            *min = min.min(value);
            *max = max.max(value);
        }
        _ => {
            reg.insert(
                name.to_owned(),
                Metric::Histogram { count: 1, sum: value, min: value, max: value },
            );
        }
    }
}

/// Aggregated view of one histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations folded in.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// `sum / count`.
    pub mean: f64,
}

/// A point-in-time copy of the whole registry, grouped by metric kind.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// All histograms, by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Clears the registry (session start).
pub(crate) fn reset() {
    registry_lock().clear();
}

/// Copies the registry into a serializable snapshot (session finish).
pub(crate) fn snapshot() -> MetricsSnapshot {
    let reg = registry_lock();
    let mut snap = MetricsSnapshot::default();
    for (name, metric) in reg.iter() {
        match *metric {
            Metric::Counter(v) => {
                snap.counters.insert(name.clone(), v);
            }
            Metric::Gauge(v) => {
                snap.gauges.insert(name.clone(), v);
            }
            Metric::Histogram { count, sum, min, max } => {
                snap.histograms.insert(
                    name.clone(),
                    HistogramSummary { count, sum, min, max, mean: sum / count.max(1) as f64 },
                );
            }
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.count".into(), 42);
        snap.gauges.insert("b.level".into(), 1.5);
        snap.histograms.insert(
            "c.sizes".into(),
            HistogramSummary { count: 3, sum: 6.0, min: 1.0, max: 3.0, mean: 2.0 },
        );
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn metric_kind_change_replaces_cleanly() {
        // A name reused with a different kind must not corrupt the
        // registry (last kind wins). Run inside a private session window.
        let session = crate::Session::begin();
        counter_add("shape.shift", 2);
        gauge_set("shape.shift", 9.0);
        let snap = session.finish();
        assert!(!snap.metrics.counters.contains_key("shape.shift"));
        assert_eq!(snap.metrics.gauges["shape.shift"], 9.0);
    }
}
