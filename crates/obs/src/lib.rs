//! Observability substrate for SimProf.
//!
//! A profiling run used to be a black box: wall-clock went *somewhere*,
//! stages processed *some* number of units, and fault/retry events only
//! existed inside the trace. This crate makes a run inspectable without
//! changing what it computes:
//!
//! * [`span`] — hierarchical RAII span timing on monotonic clocks. Spans
//!   nest through a thread-local stack, so each thread (including the
//!   parallel substrate's workers) gets its own correctly attributed
//!   subtree, tagged with a stable per-thread id.
//! * [`metrics`] — a registry of named counters, gauges and histograms
//!   (units profiled, snapshots dropped, k-means iterations, fault events,
//!   …).
//! * [`report`] — a single versioned JSON document assembling the span
//!   tree, the metric snapshot, and caller-supplied sections (phase
//!   summary, Eq. 1 allocation table).
//!
//! # The determinism contract
//!
//! Observability is strictly *read-only*: spans and metrics record what the
//! pipeline did, and **nothing downstream ever reads them back**. Reports
//! carry timings; they never feed into sampling decisions. With no
//! [`Session`] active, every hook is a single relaxed atomic load and the
//! pipeline's outputs are bit-identical to an uninstrumented build
//! (`tests/obs_determinism.rs` pins this).
//!
//! # Usage
//!
//! ```
//! use simprof_obs as obs;
//!
//! let session = obs::Session::begin();
//! {
//!     let _outer = obs::span!("analyze");
//!     let _inner = obs::span!("choose_k");
//!     obs::counter_add("kmeans.iterations", 12);
//! }
//! let report = session.finish();
//! assert_eq!(report.version, obs::REPORT_VERSION);
//! assert!(report.find_span("choose_k").is_some());
//! ```

pub mod alloc;
pub mod events;
pub mod hist;
pub mod metrics;
pub mod report;
pub mod span;
pub mod timeline;

pub use alloc::{current_alloc_bytes, peak_alloc_bytes, reset_peak, TrackingAllocator};
pub use events::{
    early_stop, fault_event, phase_reformed, salvage_event, sink_degraded, sink_retry, unit_closed,
    Event, EventKind, EventSink, JsonlEventWriter, EVENT_SCHEMA_VERSION,
};
pub use hist::Log2Histogram;
pub use metrics::{
    counter_add, gauge_set, histogram_observe, timeseries_push, HistogramSummary, MetricsSnapshot,
    TimePoint, TimeSeries,
};
pub use report::{RunReport, SpanNode, REPORT_VERSION};
pub use span::{SpanGuard, SpanRecord};
pub use timeline::{chrome_trace, write_chrome_trace};

/// True while an [`events::EventSink`] is installed (re-export of
/// [`events::streaming`] for hook sites outside this crate).
#[inline]
pub fn event_streaming() -> bool {
    events::streaming()
}

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Whether a [`Session`] is currently collecting. Every instrumentation
/// hook checks this first; when `false` the hook is a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Serializes sessions: reports from concurrent sessions would interleave
/// arbitrarily, so only one can be live at a time (later `begin` calls
/// block until the current session finishes or drops).
static SESSION_GATE: Mutex<()> = Mutex::new(());

/// True while a [`Session`] is collecting spans and metrics.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn gate_lock() -> MutexGuard<'static, ()> {
    SESSION_GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An active collection window. While a session is live, [`span!`] guards
/// and the [`metrics`] registry record; [`Session::finish`] drains
/// everything collected into a [`RunReport`].
///
/// Sessions are exclusive process-wide: a second [`Session::begin`] blocks
/// until the first ends. Dropping a session without finishing discards the
/// collected data.
#[must_use = "a session that is immediately dropped collects nothing"]
pub struct Session {
    _gate: MutexGuard<'static, ()>,
}

impl Session {
    /// Starts collecting. Clears any residue from a previous session
    /// (including a stale event sink) and re-bases the peak-allocation
    /// high-water mark, so back-to-back sessions in one process don't
    /// inherit the previous run's peak.
    pub fn begin() -> Self {
        let gate = gate_lock();
        events::uninstall();
        span::reset();
        metrics::reset();
        alloc::reset_peak();
        ENABLED.store(true, Ordering::SeqCst);
        Self { _gate: gate }
    }

    /// Stops collecting and assembles the report skeleton (span tree +
    /// metric snapshot, no sections). Callers attach their own sections
    /// with [`RunReport::with_section`]. Flushes and removes any
    /// installed event sink.
    pub fn finish(self) -> RunReport {
        ENABLED.store(false, Ordering::SeqCst);
        events::uninstall();
        let spans = span::drain();
        let metrics = metrics::snapshot();
        RunReport::assemble(spans, metrics)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        events::uninstall();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_guards_are_noops() {
        // No session: spans and metrics must not record. (Sessions are
        // process-exclusive, so take the gate to keep parallel tests out.)
        let _gate = gate_lock();
        assert!(!enabled());
        let g = SpanGuard::enter("never");
        assert!(!g.is_recording());
        drop(g);
        counter_add("never.counter", 3);
        assert!(span::drain().is_empty());
        assert!(metrics::snapshot().counters.is_empty());
    }

    #[test]
    fn session_collects_nested_spans_and_metrics() {
        let session = Session::begin();
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner");
                counter_add("work.items", 7);
                counter_add("work.items", 5);
                gauge_set("work.level", 2.5);
                histogram_observe("work.size", 10.0);
                histogram_observe("work.size", 30.0);
            }
        }
        let report = session.finish();
        assert!(!enabled(), "finish disables collection");
        assert_eq!(report.version, REPORT_VERSION);

        let outer = report.find_span("outer").expect("outer span recorded");
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert!(outer.elapsed_us >= outer.children[0].elapsed_us);

        assert_eq!(report.metrics.counters["work.items"], 12);
        assert_eq!(report.metrics.gauges["work.level"], 2.5);
        let h = &report.metrics.histograms["work.size"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 30.0);
        assert_eq!(h.mean, 20.0);
    }

    #[test]
    fn sessions_do_not_leak_between_runs() {
        let session = Session::begin();
        {
            let _a = span!("first_run");
            counter_add("first.counter", 1);
        }
        let first = session.finish();
        assert!(first.find_span("first_run").is_some());

        let session = Session::begin();
        {
            let _b = span!("second_run");
        }
        let second = session.finish();
        assert!(second.find_span("first_run").is_none(), "prior session cleared");
        assert!(second.find_span("second_run").is_some());
        assert!(!second.metrics.counters.contains_key("first.counter"));
    }

    #[test]
    fn worker_thread_spans_root_at_their_thread() {
        let session = Session::begin();
        {
            let _main = span!("driver");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span!("worker_task");
                });
            });
        }
        let report = session.finish();
        let driver = report.find_span("driver").expect("driver span");
        let worker = report.find_span("worker_task").expect("worker span");
        // The worker's span is attributed to its own thread, not nested
        // under the driver's stack.
        assert_ne!(driver.thread, worker.thread);
        assert!(driver.children.iter().all(|c| c.name != "worker_task"));
    }

    #[test]
    fn dropped_session_discards_collection() {
        let session = Session::begin();
        {
            let _s = span!("doomed");
        }
        drop(session);
        assert!(!enabled());
        let session = Session::begin();
        let report = session.finish();
        assert!(report.find_span("doomed").is_none());
    }
}
