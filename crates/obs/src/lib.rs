//! Observability substrate for SimProf.
//!
//! A profiling run used to be a black box: wall-clock went *somewhere*,
//! stages processed *some* number of units, and fault/retry events only
//! existed inside the trace. This crate makes a run inspectable without
//! changing what it computes:
//!
//! * [`context`] — job-scoped [`ObsContext`] handles owning all recorded
//!   state (spans, metrics, event sink, allocation budget). Many contexts
//!   record concurrently; nothing here is process-exclusive.
//! * [`span`] — hierarchical RAII span timing on monotonic clocks. Spans
//!   nest through a thread-local stack, so each thread (including the
//!   parallel substrate's workers) gets its own correctly attributed
//!   subtree, tagged with a stable per-context thread id.
//! * [`metrics`] — a registry of named counters, gauges and histograms
//!   (units profiled, snapshots dropped, k-means iterations, fault events,
//!   …).
//! * [`report`] — a single versioned JSON document assembling the span
//!   tree, the metric snapshot, and caller-supplied sections (phase
//!   summary, Eq. 1 allocation table).
//!
//! # The determinism contract
//!
//! Observability is strictly *read-only*: spans and metrics record what the
//! pipeline did, and **nothing downstream ever reads them back**. Reports
//! carry timings; they never feed into sampling decisions. With no
//! recording [`ObsContext`] anywhere in the process, every hook is a
//! single relaxed atomic load and the pipeline's outputs are bit-identical
//! to an uninstrumented build (`tests/obs_determinism.rs` pins this).
//!
//! # Usage
//!
//! One job, one context:
//!
//! ```
//! use simprof_obs as obs;
//!
//! let ctx = obs::ObsContext::new();
//! {
//!     let _installed = ctx.install();
//!     let _outer = obs::span!("analyze");
//!     let _inner = obs::span!("choose_k");
//!     obs::counter_add("kmeans.iterations", 12);
//! }
//! let report = ctx.finish_report();
//! assert_eq!(report.version, obs::REPORT_VERSION);
//! assert!(report.find_span("choose_k").is_some());
//! ```
//!
//! The legacy [`Session`] API is a thin shim over a context plus the
//! process *default slot* (the fallback for threads with no installed
//! context). It is exclusive — a second concurrent [`Session::begin`]
//! returns [`SessionBusy`] instead of deadlocking — and deprecated in
//! favor of per-job contexts.

pub mod alloc;
pub mod context;
pub mod events;
pub mod fleet;
pub mod hist;
pub mod metrics;
pub mod report;
pub mod span;
pub mod timeline;

pub use alloc::{
    current_alloc_bytes, peak_alloc_bytes, reset_peak, AllocSlot, TrackingAllocator, ALLOC_SLOTS,
};
pub use context::{ContextGuard, ObsContext, SessionBusy};
pub use events::{
    early_stop, fault_event, phase_reformed, salvage_event, sink_degraded, sink_retry, unit_closed,
    Event, EventKind, EventSink, JsonlEventWriter, TeeSink, EVENT_SCHEMA_VERSION,
};
pub use fleet::{FleetJob, FleetReport, FleetTotals, TenantStats, FLEET_REPORT_VERSION};
pub use hist::Log2Histogram;
pub use metrics::{
    counter_add, gauge_set, histogram_observe, timeseries_push, HistogramSummary, MetricsSnapshot,
    TimePoint, TimeSeries,
};
pub use report::{RunReport, SpanNode, REPORT_VERSION};
pub use span::{SpanGuard, SpanRecord};
pub use timeline::{
    chrome_trace, fleet_chrome_trace, write_chrome_trace, write_fleet_timeline, JobSlice,
};

/// True while the context visible to the calling thread is streaming to an
/// [`events::EventSink`] (re-export of [`events::streaming`] for hook
/// sites outside this crate).
#[inline]
pub fn event_streaming() -> bool {
    events::streaming()
}

/// True while a recording [`ObsContext`] is visible to the calling thread
/// (installed on it, or claimed as the process default by a [`Session`]).
#[inline]
pub fn enabled() -> bool {
    context::current_recording().is_some()
}

/// An active collection window over the process **default slot**: a thin
/// shim over one [`ObsContext`] kept for the batch CLI and older callers.
/// While the session is live, [`span!`] guards and the [`metrics`]
/// registry record to its context from *any* thread; [`Session::finish`]
/// drains everything collected into a [`RunReport`].
///
/// Sessions are exclusive (the default slot is single-occupancy):
/// a second [`Session::begin`] returns [`SessionBusy`] instead of
/// blocking. Concurrent jobs should hold their own [`ObsContext`]s.
/// Dropping a session without finishing discards the collected data.
#[must_use = "a session that is immediately dropped collects nothing"]
pub struct Session {
    ctx: ObsContext,
    installed: Option<ContextGuard>,
}

impl Session {
    /// Starts collecting into a fresh context and claims the process
    /// default slot, re-basing the peak-allocation high-water mark so
    /// back-to-back sessions don't inherit the previous run's peak.
    ///
    /// # Errors
    ///
    /// [`SessionBusy`] if another session currently holds the default
    /// slot (the legacy API used to block forever here).
    pub fn begin() -> Result<Self, SessionBusy> {
        let ctx = ObsContext::new();
        context::claim_default(&ctx)?;
        alloc::reset_peak();
        let installed = ctx.install();
        Ok(Self { ctx, installed: Some(installed) })
    }

    /// The session's underlying context handle.
    pub fn context(&self) -> &ObsContext {
        &self.ctx
    }

    /// Stops collecting and assembles the report skeleton (span tree +
    /// metric snapshot, no sections). Callers attach their own sections
    /// with [`RunReport::with_section`]. Flushes and removes any
    /// installed event sink.
    pub fn finish(mut self) -> RunReport {
        self.installed.take();
        context::release_default(&self.ctx);
        self.ctx.finish_report()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.installed.take();
        context::release_default(&self.ctx);
        self.ctx.stop();
    }
}

#[cfg(test)]
pub(crate) mod testlock {
    //! Sessions share the single default slot, so tests that begin one
    //! serialize on this lock (`begin` now *fails* instead of blocking).
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static GATE: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_guards_are_noops() {
        // No context installed on this thread and (testlock held) no
        // session claiming the default slot: hooks must not record.
        let _gate = testlock::lock();
        assert!(!enabled());
        let g = SpanGuard::enter("never");
        assert!(!g.is_recording());
        drop(g);
        counter_add("never.counter", 3);
        // A fresh session sees none of the above.
        let session = Session::begin().unwrap();
        let report = session.finish();
        assert!(report.spans.is_empty());
        assert!(report.metrics.counters.is_empty());
    }

    #[test]
    fn session_collects_nested_spans_and_metrics() {
        let _gate = testlock::lock();
        let session = Session::begin().unwrap();
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner");
                counter_add("work.items", 7);
                counter_add("work.items", 5);
                gauge_set("work.level", 2.5);
                histogram_observe("work.size", 10.0);
                histogram_observe("work.size", 30.0);
            }
        }
        let report = session.finish();
        assert!(!enabled(), "finish disables collection");
        assert_eq!(report.version, REPORT_VERSION);

        let outer = report.find_span("outer").expect("outer span recorded");
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert!(outer.elapsed_us >= outer.children[0].elapsed_us);

        assert_eq!(report.metrics.counters["work.items"], 12);
        assert_eq!(report.metrics.gauges["work.level"], 2.5);
        let h = &report.metrics.histograms["work.size"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 30.0);
        assert_eq!(h.mean, 20.0);
    }

    #[test]
    fn sessions_do_not_leak_between_runs() {
        let _gate = testlock::lock();
        let session = Session::begin().unwrap();
        {
            let _a = span!("first_run");
            counter_add("first.counter", 1);
        }
        let first = session.finish();
        assert!(first.find_span("first_run").is_some());

        let session = Session::begin().unwrap();
        {
            let _b = span!("second_run");
        }
        let second = session.finish();
        assert!(second.find_span("first_run").is_none(), "prior session cleared");
        assert!(second.find_span("second_run").is_some());
        assert!(!second.metrics.counters.contains_key("first.counter"));
    }

    #[test]
    fn second_session_fails_fast_with_session_busy() {
        let _gate = testlock::lock();
        let live = Session::begin().unwrap();
        // The legacy API would deadlock here; now it returns a typed error.
        match Session::begin() {
            Err(busy) => assert_eq!(busy, SessionBusy),
            Ok(_) => panic!("second session must fail while one is live"),
        }
        drop(live);
        // The slot frees on drop.
        let next = Session::begin().expect("slot released");
        drop(next.finish());
    }

    #[test]
    fn worker_thread_spans_root_at_their_thread() {
        let _gate = testlock::lock();
        let session = Session::begin().unwrap();
        {
            let _main = span!("driver");
            std::thread::scope(|s| {
                s.spawn(|| {
                    // No context installed on this thread: the default
                    // slot routes the span to the session's context.
                    let _w = span!("worker_task");
                });
            });
        }
        let report = session.finish();
        let driver = report.find_span("driver").expect("driver span");
        let worker = report.find_span("worker_task").expect("worker span");
        // The worker's span is attributed to its own thread, not nested
        // under the driver's stack.
        assert_ne!(driver.thread, worker.thread);
        assert!(driver.children.iter().all(|c| c.name != "worker_task"));
    }

    #[test]
    fn dropped_session_discards_collection() {
        let _gate = testlock::lock();
        let session = Session::begin().unwrap();
        {
            let _s = span!("doomed");
        }
        drop(session);
        assert!(!enabled());
        let session = Session::begin().unwrap();
        let report = session.finish();
        assert!(report.find_span("doomed").is_none());
    }

    #[test]
    fn context_runs_alongside_a_live_session_without_bleeding() {
        let _gate = testlock::lock();
        let session = Session::begin().unwrap();
        counter_add("session.counter", 1);
        let job = ObsContext::new();
        {
            let _installed = job.install();
            // The installed context shadows the session on this thread.
            counter_add("job.counter", 5);
        }
        counter_add("session.counter", 1);
        let job_report = job.finish_report();
        let session_report = session.finish();
        assert_eq!(job_report.metrics.counters["job.counter"], 5);
        assert!(!job_report.metrics.counters.contains_key("session.counter"));
        assert_eq!(session_report.metrics.counters["session.counter"], 2);
        assert!(!session_report.metrics.counters.contains_key("job.counter"));
    }
}
