//! Peak-heap tracking allocator.
//!
//! [`TrackingAllocator`] wraps the system allocator and keeps two global
//! atomic counters: bytes currently live and the high-water mark since the
//! last [`reset_peak`]. It exists for the benchmark harness — installing it
//! as the `#[global_allocator]` lets `bench_pipeline` report the real peak
//! heap of streamed vs. batch analysis instead of estimating.
//!
//! The bookkeeping is two relaxed atomic ops per (de)allocation; the
//! counters are observational only, so the usual determinism contract of
//! this crate holds: nothing downstream reads them back into the pipeline.
//!
//! # Usage
//!
//! ```ignore
//! use simprof_obs::alloc::TrackingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: TrackingAllocator = TrackingAllocator;
//!
//! simprof_obs::alloc::reset_peak();
//! run_workload();
//! let peak = simprof_obs::alloc::peak_alloc_bytes();
//! ```
//!
//! Without the `#[global_allocator]` installation the counters simply stay
//! at zero — code that *reads* them works in any build.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bytes currently allocated through the tracking allocator.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] that delegates to [`System`] and maintains the
/// current/peak byte counters read by [`current_alloc_bytes`] and
/// [`peak_alloc_bytes`].
pub struct TrackingAllocator;

impl TrackingAllocator {
    fn record_alloc(size: usize) {
        let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    fn record_dealloc(size: usize) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates have no effect on the returned pointers or layouts.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::record_dealloc(layout.size());
            Self::record_alloc(new_size);
        }
        p
    }
}

/// Bytes currently live. Zero unless [`TrackingAllocator`] is installed as
/// the global allocator.
pub fn current_alloc_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`]. Zero unless
/// [`TrackingAllocator`] is installed as the global allocator.
pub fn peak_alloc_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size, so the next
/// [`peak_alloc_bytes`] reading covers only allocations made after this
/// call.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does NOT install the allocator globally (that would
    // perturb every other test's numbers), so exercise the bookkeeping
    // through the GlobalAlloc impl directly. The counters are process
    // globals, so these tests serialize on a lock.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn counters_track_alloc_and_dealloc() {
        let _guard = LOCK.lock().unwrap();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before_current = current_alloc_bytes();
        reset_peak();
        let p = unsafe { TrackingAllocator.alloc(layout) };
        assert!(!p.is_null());
        assert!(current_alloc_bytes() >= before_current + 4096);
        assert!(peak_alloc_bytes() >= before_current + 4096);
        unsafe { TrackingAllocator.dealloc(p, layout) };
        assert!(current_alloc_bytes() <= peak_alloc_bytes());
    }

    #[test]
    fn realloc_rebalances_current() {
        let _guard = LOCK.lock().unwrap();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let p = unsafe { TrackingAllocator.alloc(layout) };
        let mid = current_alloc_bytes();
        let p2 = unsafe { TrackingAllocator.realloc(p, layout, 2048) };
        assert!(!p2.is_null());
        assert_eq!(current_alloc_bytes(), mid + 1024);
        let grown = Layout::from_size_align(2048, 8).unwrap();
        unsafe { TrackingAllocator.dealloc(p2, grown) };
        assert_eq!(current_alloc_bytes(), mid - 1024);
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let _guard = LOCK.lock().unwrap();
        let layout = Layout::from_size_align(512, 8).unwrap();
        let p = unsafe { TrackingAllocator.alloc(layout) };
        unsafe { TrackingAllocator.dealloc(p, layout) };
        reset_peak();
        assert_eq!(peak_alloc_bytes(), current_alloc_bytes());
    }
}
