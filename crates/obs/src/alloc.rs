//! Peak-heap tracking allocator with per-job budget slots.
//!
//! [`TrackingAllocator`] wraps the system allocator and keeps two global
//! atomic counters: bytes currently live and the high-water mark since the
//! last [`reset_peak`]. It exists for the benchmark harness — installing it
//! as the `#[global_allocator]` lets `bench_pipeline` report the real peak
//! heap of streamed vs. batch analysis instead of estimating.
//!
//! On top of the process-wide counters, a fixed table of [`ALLOC_SLOTS`]
//! **budget slots** gives concurrent jobs their own current/peak
//! accounting: a job claims an [`AllocSlot`], attaches it to its
//! [`crate::ObsContext`], and every thread the context is installed on
//! (including pool workers the job submits to) charges its allocations to
//! that slot. One job's allocations never attribute to another job's
//! peak.
//!
//! The bookkeeping is a few relaxed atomic ops per (de)allocation; the
//! counters are observational only, so the usual determinism contract of
//! this crate holds: nothing downstream reads them back into the pipeline.
//!
//! # Usage
//!
//! ```ignore
//! use simprof_obs::alloc::TrackingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: TrackingAllocator = TrackingAllocator;
//!
//! simprof_obs::alloc::reset_peak();
//! run_workload();
//! let peak = simprof_obs::alloc::peak_alloc_bytes();
//! ```
//!
//! Without the `#[global_allocator]` installation the counters simply stay
//! at zero — code that *reads* them works in any build.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};

/// Bytes currently allocated through the tracking allocator.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Number of per-job budget slots available process-wide.
pub const ALLOC_SLOTS: usize = 64;

struct SlotState {
    taken: AtomicBool,
    /// Signed: a thread tagged for one job can free memory another job
    /// allocated, so the balance may dip below zero transiently.
    current: AtomicIsize,
    peak: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
static SLOTS: [SlotState; ALLOC_SLOTS] = [const {
    SlotState {
        taken: AtomicBool::new(false),
        current: AtomicIsize::new(0),
        peak: AtomicUsize::new(0),
    }
}; ALLOC_SLOTS];

thread_local! {
    /// Which slot this thread charges, `usize::MAX` for none. Const-init
    /// `Cell` so reads inside `GlobalAlloc` never allocate; accessed via
    /// `try_with` so TLS teardown can't panic the allocator.
    static SLOT_TAG: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Tags the calling thread to charge `idx` (or `usize::MAX` for none),
/// returning the previous tag so installers can restore it.
pub(crate) fn set_thread_slot(idx: usize) -> usize {
    SLOT_TAG
        .try_with(|c| {
            let prev = c.get();
            c.set(idx);
            prev
        })
        .unwrap_or(usize::MAX)
}

/// A claimed per-job allocation-budget slot. Attach it to a job's
/// [`crate::ObsContext`] with [`crate::ObsContext::set_alloc_slot`];
/// dropping the handle releases the slot for reuse.
#[must_use = "dropping the slot releases it; hold it for the job's lifetime"]
pub struct AllocSlot {
    idx: usize,
}

impl AllocSlot {
    /// Claims a free slot with zeroed counters, or `None` when all
    /// [`ALLOC_SLOTS`] are in use.
    pub fn claim() -> Option<Self> {
        for (idx, slot) in SLOTS.iter().enumerate() {
            if slot.taken.compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed).is_ok()
            {
                slot.current.store(0, Ordering::Relaxed);
                slot.peak.store(0, Ordering::Relaxed);
                return Some(Self { idx });
            }
        }
        None
    }

    /// This slot's index in the process table.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Bytes currently charged to this slot (clamped at zero).
    pub fn current_bytes(&self) -> usize {
        SLOTS[self.idx].current.load(Ordering::Relaxed).max(0) as usize
    }

    /// Peak bytes charged to this slot since claim (or the last
    /// [`AllocSlot::reset_peak`]).
    pub fn peak_bytes(&self) -> usize {
        SLOTS[self.idx].peak.load(Ordering::Relaxed)
    }

    /// Re-bases this slot's high-water mark to its current balance.
    pub fn reset_peak(&self) {
        let now = SLOTS[self.idx].current.load(Ordering::Relaxed).max(0) as usize;
        SLOTS[self.idx].peak.store(now, Ordering::Relaxed);
    }
}

impl Drop for AllocSlot {
    fn drop(&mut self) {
        SLOTS[self.idx].taken.store(false, Ordering::Release);
    }
}

fn slot_record_alloc(size: usize) {
    let Ok(tag) = SLOT_TAG.try_with(Cell::get) else { return };
    if tag >= ALLOC_SLOTS {
        return;
    }
    let slot = &SLOTS[tag];
    let now = slot.current.fetch_add(size as isize, Ordering::Relaxed) + size as isize;
    if now > 0 {
        slot.peak.fetch_max(now as usize, Ordering::Relaxed);
    }
}

fn slot_record_dealloc(size: usize) {
    let Ok(tag) = SLOT_TAG.try_with(Cell::get) else { return };
    if tag >= ALLOC_SLOTS {
        return;
    }
    SLOTS[tag].current.fetch_sub(size as isize, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] that delegates to [`System`] and maintains the
/// current/peak byte counters read by [`current_alloc_bytes`] and
/// [`peak_alloc_bytes`], plus the claimed [`AllocSlot`] of the thread's
/// installed context, if any.
pub struct TrackingAllocator;

impl TrackingAllocator {
    fn record_alloc(size: usize) {
        let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(now, Ordering::Relaxed);
        slot_record_alloc(size);
    }

    fn record_dealloc(size: usize) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
        slot_record_dealloc(size);
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates have no effect on the returned pointers or layouts.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::record_dealloc(layout.size());
            Self::record_alloc(new_size);
        }
        p
    }
}

/// Bytes currently live. Zero unless [`TrackingAllocator`] is installed as
/// the global allocator.
pub fn current_alloc_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`]. Zero unless
/// [`TrackingAllocator`] is installed as the global allocator.
pub fn peak_alloc_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size, so the next
/// [`peak_alloc_bytes`] reading covers only allocations made after this
/// call.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does NOT install the allocator globally (that would
    // perturb every other test's numbers), so exercise the bookkeeping
    // through the GlobalAlloc impl directly. The counters are process
    // globals, so these tests serialize on a lock.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn counters_track_alloc_and_dealloc() {
        let _guard = LOCK.lock().unwrap();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before_current = current_alloc_bytes();
        reset_peak();
        let p = unsafe { TrackingAllocator.alloc(layout) };
        assert!(!p.is_null());
        assert!(current_alloc_bytes() >= before_current + 4096);
        assert!(peak_alloc_bytes() >= before_current + 4096);
        unsafe { TrackingAllocator.dealloc(p, layout) };
        assert!(current_alloc_bytes() <= peak_alloc_bytes());
    }

    #[test]
    fn realloc_rebalances_current() {
        let _guard = LOCK.lock().unwrap();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let p = unsafe { TrackingAllocator.alloc(layout) };
        let mid = current_alloc_bytes();
        let p2 = unsafe { TrackingAllocator.realloc(p, layout, 2048) };
        assert!(!p2.is_null());
        assert_eq!(current_alloc_bytes(), mid + 1024);
        let grown = Layout::from_size_align(2048, 8).unwrap();
        unsafe { TrackingAllocator.dealloc(p2, grown) };
        assert_eq!(current_alloc_bytes(), mid - 1024);
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let _guard = LOCK.lock().unwrap();
        let layout = Layout::from_size_align(512, 8).unwrap();
        let p = unsafe { TrackingAllocator.alloc(layout) };
        unsafe { TrackingAllocator.dealloc(p, layout) };
        reset_peak();
        assert_eq!(peak_alloc_bytes(), current_alloc_bytes());
    }

    #[test]
    fn tagged_threads_charge_their_own_slot() {
        let _guard = LOCK.lock().unwrap();
        let a = AllocSlot::claim().expect("slot a");
        let b = AllocSlot::claim().expect("slot b");
        assert_ne!(a.index(), b.index());

        let layout = Layout::from_size_align(2048, 8).unwrap();
        let prev = set_thread_slot(a.index());
        let p = unsafe { TrackingAllocator.alloc(layout) };
        set_thread_slot(b.index());
        let q = unsafe { TrackingAllocator.alloc(layout) };
        set_thread_slot(prev);

        assert_eq!(a.peak_bytes(), 2048, "slot a sees only its own alloc");
        assert_eq!(b.peak_bytes(), 2048, "slot b sees only its own alloc");

        // Untagged frees touch neither slot.
        unsafe { TrackingAllocator.dealloc(p, layout) };
        unsafe { TrackingAllocator.dealloc(q, layout) };
        assert_eq!(a.current_bytes(), 2048);
        assert_eq!(b.current_bytes(), 2048);
    }

    #[test]
    fn released_slots_are_reclaimable_with_fresh_counters() {
        let _guard = LOCK.lock().unwrap();
        let layout = Layout::from_size_align(256, 8).unwrap();
        let first = AllocSlot::claim().expect("slot");
        let idx = first.index();
        let prev = set_thread_slot(idx);
        let p = unsafe { TrackingAllocator.alloc(layout) };
        unsafe { TrackingAllocator.dealloc(p, layout) };
        set_thread_slot(prev);
        assert!(first.peak_bytes() >= 256);
        drop(first);

        let second = AllocSlot::claim().expect("reclaim");
        assert_eq!(second.index(), idx, "lowest free slot is reused");
        assert_eq!(second.peak_bytes(), 0, "counters zeroed on claim");
        assert_eq!(second.current_bytes(), 0);
    }
}
