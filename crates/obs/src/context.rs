//! Job-scoped observability contexts.
//!
//! An [`ObsContext`] owns everything one profiling job records: its span
//! collector, metrics registry, event-sink slot, and (optionally) an
//! allocation-budget slot. Contexts are cheap `Arc` handles; cloning one
//! shares the underlying state, so a job can hand its context to worker
//! threads and every recording lands in the same place.
//!
//! Instrumentation hooks ([`crate::span!`], [`crate::counter_add`], the
//! event hooks) resolve "the current context" instead of touching process
//! globals:
//!
//! 1. a fast global count of recording contexts ([`ACTIVE`]) — when zero,
//!    every hook is a single relaxed atomic load, exactly as before;
//! 2. the calling thread's context stack (installed via
//!    [`ObsContext::install`], propagated into pool workers by the
//!    parallel substrate);
//! 3. the process **default slot**, claimed by the deprecated
//!    [`crate::Session`] shim so plain `std::thread` spawns in batch mode
//!    still attribute to the session.
//!
//! Two jobs with two contexts record concurrently without blocking or
//! bleeding into each other; the old `SESSION_GATE` is gone.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::events::{EventKind, EventSink, SinkSlot};
use crate::metrics::{MetricsSnapshot, MetricsStore};
use crate::report::RunReport;
use crate::span::SpanRecord;

/// Context-id source. Ids start at 1 so 0 can mean "no context" in
/// thread-local caches.
static NEXT_CTX_ID: AtomicU64 = AtomicU64::new(1);

/// Number of contexts currently recording, across the whole process. The
/// disabled fast path for every hook is `ACTIVE == 0`: one relaxed load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Whether the default slot holds a context (checked before taking the
/// [`DEFAULT`] lock so multi-job service mode never contends on it).
static DEFAULT_SET: AtomicBool = AtomicBool::new(false);

/// The process default context: the fallback for threads that have no
/// installed context (bare `std::thread` spawns under a batch
/// [`crate::Session`]).
static DEFAULT: Mutex<Option<ObsContext>> = Mutex::new(None);

thread_local! {
    /// Contexts installed on this thread, innermost last.
    static STACK: RefCell<Vec<ObsContext>> = const { RefCell::new(Vec::new()) };
    /// Cache of the last `(context id, small thread id)` lookup, so hot
    /// span entry under one context skips the thread-table lock.
    static THREAD_CACHE: Cell<(u64, usize)> = const { Cell::new((0, 0)) };
}

fn default_lock() -> MutexGuard<'static, Option<ObsContext>> {
    DEFAULT.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A second [`crate::Session`] was begun while one was already live.
///
/// Sessions wrap the single process-wide default slot; concurrent jobs
/// should hold their own [`ObsContext`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionBusy;

impl std::fmt::Display for SessionBusy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "an observability session is already live (use per-job ObsContext handles)")
    }
}

impl std::error::Error for SessionBusy {}

pub(crate) struct CtxInner {
    id: u64,
    /// Whether this context is still collecting. Cleared exactly once
    /// (swap) so [`ACTIVE`] stays balanced.
    recording: AtomicBool,
    /// Completed spans, appended by [`crate::SpanGuard`] drops.
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    /// Entry-ordered span-id source (unique within the context).
    pub(crate) next_span_id: AtomicU64,
    /// Threads that recorded under this context, in first-span order; the
    /// index is the small per-context thread id.
    threads: Mutex<Vec<std::thread::ThreadId>>,
    /// Counters, gauges, histograms, and time series.
    pub(crate) metrics: MetricsStore,
    /// The streaming event sink, if one is installed.
    pub(crate) sink: SinkSlot,
    /// Index of the [`crate::alloc::AllocSlot`] charged for allocations
    /// made while this context is installed; `usize::MAX` when unset.
    alloc_slot: AtomicUsize,
}

impl Drop for CtxInner {
    fn drop(&mut self) {
        // A context dropped without `finish_report` must still release its
        // ACTIVE count (and flush its sink) or the fast path stays slow.
        if self.recording.swap(false, Ordering::SeqCst) {
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
        self.sink.uninstall();
    }
}

/// A handle to one job's observability state. Clones share state; see the
/// [module docs](self) for how hooks resolve the current context.
#[derive(Clone)]
pub struct ObsContext {
    inner: Arc<CtxInner>,
}

impl Default for ObsContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsContext {
    /// Creates a fresh, recording context with empty span and metric
    /// state and no event sink.
    pub fn new() -> Self {
        crate::span::pin_epoch();
        ACTIVE.fetch_add(1, Ordering::SeqCst);
        Self {
            inner: Arc::new(CtxInner {
                id: NEXT_CTX_ID.fetch_add(1, Ordering::Relaxed),
                recording: AtomicBool::new(true),
                spans: Mutex::new(Vec::new()),
                next_span_id: AtomicU64::new(1),
                threads: Mutex::new(Vec::new()),
                metrics: MetricsStore::new(),
                sink: SinkSlot::new(),
                alloc_slot: AtomicUsize::new(usize::MAX),
            }),
        }
    }

    /// This context's process-unique id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether the context is still collecting.
    pub fn is_recording(&self) -> bool {
        self.inner.recording.load(Ordering::Relaxed)
    }

    /// Stops collecting (idempotent). Hooks resolving this context become
    /// no-ops; an installed sink is flushed and removed.
    pub fn stop(&self) {
        if self.inner.recording.swap(false, Ordering::SeqCst) {
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
        self.inner.sink.uninstall();
    }

    /// Installs this context on the calling thread; hooks on the thread
    /// (and pool workers the thread submits to) record here until the
    /// returned guard drops.
    #[must_use = "the context is only current while the guard lives"]
    pub fn install(&self) -> ContextGuard {
        STACK.with(|s| s.borrow_mut().push(self.clone()));
        let prev_slot = match self.inner.alloc_slot.load(Ordering::Relaxed) {
            usize::MAX => None,
            idx => Some(crate::alloc::set_thread_slot(idx)),
        };
        ContextGuard { ctx: self.clone(), prev_slot }
    }

    /// The innermost context installed on the calling thread, if any —
    /// what the parallel substrate captures to propagate into its
    /// workers.
    pub fn current() -> Option<ObsContext> {
        if ACTIVE.load(Ordering::Relaxed) == 0 {
            return None;
        }
        STACK.try_with(|s| s.borrow().last().cloned()).ok().flatten()
    }

    /// Stops collecting and assembles the report skeleton (span tree +
    /// metric snapshot, no sections), draining the context's state.
    pub fn finish_report(&self) -> RunReport {
        self.stop();
        let spans = std::mem::take(&mut *lock(&self.inner.spans));
        let metrics = self.inner.metrics.snapshot();
        RunReport::assemble(spans, metrics)
    }

    /// Copies the context's metrics registry without stopping collection.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Installs `sink` as this context's event sink, replacing (and
    /// flushing) any previous one. Event `seq` restarts at 1.
    pub fn install_sink(&self, sink: Box<dyn EventSink>) {
        self.inner.sink.install(sink);
    }

    /// Removes and flushes this context's sink, if any; returns whether
    /// one was installed.
    pub fn uninstall_sink(&self) -> bool {
        self.inner.sink.uninstall()
    }

    /// True while an event sink is installed on this context.
    pub fn streaming(&self) -> bool {
        self.inner.sink.streaming()
    }

    /// Stamps and delivers one event through this context's sink.
    pub(crate) fn emit(&self, kind: EventKind) {
        self.inner.sink.emit(kind);
    }

    /// Charges allocations made while this context is installed to
    /// `slot` (see [`crate::alloc::AllocSlot`]). Call before
    /// [`ObsContext::install`].
    pub fn set_alloc_slot(&self, slot: &crate::alloc::AllocSlot) {
        self.inner.alloc_slot.store(slot.index(), Ordering::Relaxed);
    }

    /// The small per-context id of the calling thread, assigned on first
    /// use (0 = first thread that recorded under this context).
    pub(crate) fn thread_id_for_current(&self) -> usize {
        let cached = THREAD_CACHE.try_with(Cell::get).unwrap_or((0, 0));
        if cached.0 == self.inner.id {
            return cached.1;
        }
        let me = std::thread::current().id();
        let mut threads = lock(&self.inner.threads);
        let id = match threads.iter().position(|t| *t == me) {
            Some(i) => i,
            None => {
                threads.push(me);
                threads.len() - 1
            }
        };
        drop(threads);
        let _ = THREAD_CACHE.try_with(|c| c.set((self.inner.id, id)));
        id
    }

    pub(crate) fn inner(&self) -> &CtxInner {
        &self.inner
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Keeps an [`ObsContext`] current on one thread; dropping pops it (and
/// restores the thread's previous allocation-slot tag).
pub struct ContextGuard {
    ctx: ObsContext,
    prev_slot: Option<usize>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev_slot {
            crate::alloc::set_thread_slot(prev);
        }
        let id = self.ctx.id();
        let _ = STACK.try_with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order per thread, so the top is ours; be
            // defensive anyway (a guard moved across threads would desync).
            if s.last().map(ObsContext::id) == Some(id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|c| c.id() == id) {
                s.remove(pos);
            }
        });
    }
}

/// The innermost *recording* context visible to the calling thread:
/// thread stack first, then the process default slot. `None` (after one
/// relaxed load) when no context anywhere is recording.
pub(crate) fn current_recording() -> Option<ObsContext> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let from_stack = STACK
        .try_with(|s| s.borrow().iter().rev().find(|c| c.is_recording()).cloned())
        .ok()
        .flatten();
    if from_stack.is_some() {
        return from_stack;
    }
    if !DEFAULT_SET.load(Ordering::Relaxed) {
        return None;
    }
    default_lock().clone().filter(ObsContext::is_recording)
}

/// The current recording context, but only if it is streaming events.
pub(crate) fn streaming_ctx() -> Option<ObsContext> {
    current_recording().filter(ObsContext::streaming)
}

/// Claims the process default slot for `ctx` (the [`crate::Session`]
/// shim's exclusivity), failing with [`SessionBusy`] if another context
/// holds it.
pub(crate) fn claim_default(ctx: &ObsContext) -> Result<(), SessionBusy> {
    let mut slot = default_lock();
    if slot.is_some() {
        return Err(SessionBusy);
    }
    *slot = Some(ctx.clone());
    DEFAULT_SET.store(true, Ordering::SeqCst);
    Ok(())
}

/// Releases the default slot if `ctx` holds it (idempotent).
pub(crate) fn release_default(ctx: &ObsContext) {
    let mut slot = default_lock();
    if slot.as_ref().map(ObsContext::id) == Some(ctx.id()) {
        *slot = None;
        DEFAULT_SET.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_contexts_record_concurrently_without_bleeding() {
        let barrier = std::sync::Barrier::new(2);
        let run = |tag: &str| {
            let ctx = ObsContext::new();
            let guard = ctx.install();
            barrier.wait();
            {
                let _s = crate::span!("job.work");
                crate::counter_add("job.units", 1);
                crate::counter_add(&format!("job.{tag}"), 7);
            }
            barrier.wait();
            drop(guard);
            ctx.finish_report()
        };
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(|| run("a"));
            let hb = s.spawn(|| run("b"));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        for (report, mine, other) in [(&a, "job.a", "job.b"), (&b, "job.b", "job.a")] {
            assert!(report.find_span("job.work").is_some());
            assert_eq!(report.metrics.counters["job.units"], 1, "no cross-job counts");
            assert_eq!(report.metrics.counters[mine], 7);
            assert!(!report.metrics.counters.contains_key(other), "foreign counter leaked");
        }
    }

    #[test]
    fn stopped_context_is_invisible_to_hooks() {
        // The stray hook calls below would otherwise fall through to a
        // concurrent test's default-slot session.
        let _gate = crate::testlock::lock();
        let ctx = ObsContext::new();
        let _guard = ctx.install();
        ctx.stop();
        {
            let _s = crate::span!("after.stop");
        }
        crate::counter_add("after.stop", 1);
        let report = ctx.finish_report();
        assert!(report.find_span("after.stop").is_none());
        assert!(report.metrics.counters.is_empty());
    }

    #[test]
    fn context_ids_and_thread_ids_are_per_context() {
        let a = ObsContext::new();
        let b = ObsContext::new();
        assert_ne!(a.id(), b.id());
        // Each context assigns this thread its own small id starting at 0.
        assert_eq!(a.thread_id_for_current(), 0);
        assert_eq!(b.thread_id_for_current(), 0);
        assert_eq!(a.thread_id_for_current(), 0, "cache keeps ids stable");
        let other = std::thread::scope(|s| s.spawn(|| a.thread_id_for_current()).join().unwrap());
        assert_eq!(other, 1);
    }
}
