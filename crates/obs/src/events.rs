//! The streaming event log: a live, ordered record of what a session did.
//!
//! Where the [`crate::report`] module assembles one post-hoc snapshot, an
//! [`EventSink`] receives every span open/close, counter delta, gauge
//! write, histogram observation, fault, and closed sampling unit *as it
//! happens*. The stock sink is [`JsonlEventWriter`], which appends one
//! compact JSON object per line (JSONL) so a run can be tailed while it
//! executes.
//!
//! # Schema (version [`EVENT_SCHEMA_VERSION`])
//!
//! Every line is an object with four required keys:
//!
//! * `v` — schema version (bumped on any breaking change; new optional
//!   payload fields do **not** bump it),
//! * `seq` — strictly increasing per context, assigned under the sink
//!   lock so file order equals `seq` order,
//! * `ts_us` — microseconds since the process span epoch, stamped under
//!   the same lock so it is non-decreasing in file order even when
//!   multiple threads race to emit,
//! * `kind` — the discriminator (`meta`, `span_open`, `span_close`,
//!   `counter`, `gauge`, `hist`, `fault`, `unit_closed`, `salvage`,
//!   `sink_retry`, `sink_degraded`, `phase_reformed`, `early_stop`,
//!   `job_queued`, `job_started`, `job_finished`, `job_failed`),
//!
//! plus kind-specific payload fields (see [`EventKind`]). The first line
//! of a [`JsonlEventWriter`] log is a `meta` record carrying the
//! generator name.
//!
//! # Determinism contract
//!
//! Streaming follows the same rules as the rest of this crate: with no
//! sink installed every emission site is one relaxed atomic load, sinks
//! are write-only (nothing downstream reads events back), and
//! `tests/obs_determinism.rs` pins that enabling the event log leaves
//! pipeline output bit-identical.
//!
//! Sink state lives in the owning [`crate::ObsContext`] (one [`SinkSlot`]
//! per context), so concurrent jobs stream to independent logs with
//! independent `seq` counters. The free functions here operate on the
//! calling thread's current context.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::context;
use crate::span;

/// Version of the event-log schema emitted by this build.
pub const EVENT_SCHEMA_VERSION: u32 = 1;

/// Receives events as they are emitted. Implementations must be cheap:
/// the emitter holds its context's sink lock while calling [`emit`].
///
/// [`emit`]: EventSink::emit
pub trait EventSink: Send {
    /// Handles one event. Called in strictly increasing `seq` order.
    fn emit(&mut self, event: &Event);
    /// Flushes buffered output; called when the sink is uninstalled.
    fn flush(&mut self) {}
}

struct SinkState {
    sink: Box<dyn EventSink>,
    seq: u64,
}

/// One context's event-sink slot: the installed sink (if any) plus its
/// `seq` counter, guarded by a flag so emission sites pay one relaxed
/// load when nothing is streaming.
pub(crate) struct SinkSlot {
    streaming: AtomicBool,
    state: Mutex<Option<SinkState>>,
}

impl SinkSlot {
    pub(crate) fn new() -> Self {
        Self { streaming: AtomicBool::new(false), state: Mutex::new(None) }
    }

    fn state_lock(&self) -> MutexGuard<'_, Option<SinkState>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn streaming(&self) -> bool {
        self.streaming.load(Ordering::Relaxed)
    }

    pub(crate) fn install(&self, sink: Box<dyn EventSink>) {
        let mut state = self.state_lock();
        if let Some(mut old) = state.take() {
            old.sink.flush();
        }
        *state = Some(SinkState { sink, seq: 0 });
        self.streaming.store(true, Ordering::SeqCst);
    }

    pub(crate) fn uninstall(&self) -> bool {
        let mut state = self.state_lock();
        self.streaming.store(false, Ordering::SeqCst);
        match state.take() {
            Some(mut s) => {
                s.sink.flush();
                true
            }
            None => false,
        }
    }

    /// Stamps and delivers one event. `seq` and `ts_us` are both assigned
    /// under the sink lock, so file order, `seq` order and `ts_us` order
    /// all agree.
    pub(crate) fn emit(&self, kind: EventKind) {
        if !self.streaming() {
            return;
        }
        let mut state = self.state_lock();
        let Some(s) = state.as_mut() else { return };
        s.seq += 1;
        let event = Event { v: EVENT_SCHEMA_VERSION, seq: s.seq, ts_us: span::now_us(), kind };
        s.sink.emit(&event);
    }
}

/// True while the calling thread's current context has an [`EventSink`]
/// installed and receiving events.
#[inline]
pub fn streaming() -> bool {
    context::streaming_ctx().is_some()
}

/// Installs `sink` on the calling thread's current context, replacing
/// (and flushing) any previous one. With no current context the sink is
/// dropped. The context's `finish_report`/`stop` uninstalls
/// automatically.
pub fn install(sink: Box<dyn EventSink>) {
    if let Some(ctx) = context::current_recording() {
        ctx.install_sink(sink);
    }
}

/// Removes and flushes the current context's sink, if any. Returns
/// whether a sink was installed.
pub fn uninstall() -> bool {
    context::current_recording().is_some_and(|ctx| ctx.uninstall_sink())
}

/// One event-log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Schema version ([`EVENT_SCHEMA_VERSION`] for records this build
    /// emits).
    pub v: u32,
    /// Strictly increasing per session; file order equals `seq` order.
    pub seq: u64,
    /// Microseconds since the process span epoch; non-decreasing in file
    /// order.
    pub ts_us: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// The kind-specific payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opened ([`crate::SpanGuard::enter`]).
    SpanOpen {
        /// Entry-ordered span id.
        id: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// The span's label.
        name: String,
        /// Small sequential thread id.
        thread: usize,
    },
    /// A span closed (guard dropped).
    SpanClose {
        /// Entry-ordered span id (matches the `SpanOpen`).
        id: u64,
        /// The span's label.
        name: String,
        /// Small sequential thread id.
        thread: usize,
        /// Microseconds the span covered.
        elapsed_us: u64,
    },
    /// A counter was bumped ([`crate::counter_add`]).
    Counter {
        /// Metric name.
        name: String,
        /// The increment.
        delta: u64,
        /// Running total after the increment.
        total: u64,
    },
    /// A gauge was written ([`crate::gauge_set`]).
    Gauge {
        /// Metric name.
        name: String,
        /// The new level.
        value: f64,
    },
    /// A histogram observation ([`crate::histogram_observe`]).
    Hist {
        /// Metric name.
        name: String,
        /// The observed value.
        value: f64,
    },
    /// A runtime fault was injected (engine fault hooks).
    Fault {
        /// The fault's metric name (e.g. `engine.faults.crash`).
        name: String,
        /// Structured fault detail, as serialized by the engine.
        detail: Value,
    },
    /// A sampling unit closed on the profiler path (`UnitSink`).
    UnitClosed {
        /// The unit's id.
        unit: u64,
        /// Instructions retired in the unit.
        instrs: u64,
        /// Cycles spent in the unit.
        cycles: u64,
        /// Snapshots captured for the unit.
        snapshots: u64,
        /// Whether fault degradation truncated the unit.
        truncated: bool,
    },
    /// A damaged trace was salvaged (`simprof-trace` recovery path).
    Salvage {
        /// The salvaged file (or stream label).
        path: String,
        /// Units recovered from intact chunk frames.
        recovered_units: u64,
        /// Frames that failed validation.
        bad_frames: u64,
        /// Bytes skipped while resynchronizing.
        skipped_bytes: u64,
        /// Successful resynchronizations onto a later valid frame.
        resyncs: u64,
    },
    /// A trace sink retried a transient I/O error.
    SinkRetry {
        /// The sink's target (file path or stream label).
        target: String,
        /// 1-based retry attempt number.
        attempt: u64,
        /// The transient error being retried.
        error: String,
    },
    /// A trace sink exhausted its retries and degraded to memory-only
    /// collection.
    SinkDegraded {
        /// The sink's target (file path or stream label).
        target: String,
        /// Retries performed before giving up.
        retries: u64,
        /// The final, fatal error.
        error: String,
    },
    /// The live analyzer re-formed phases after drift exceeded its
    /// threshold (DESIGN.md §16).
    PhaseReformed {
        /// Units profiled when the re-formation fired.
        units: u64,
        /// Phase count before re-formation.
        old_k: u64,
        /// Phase count after re-formation.
        new_k: u64,
        /// The drift statistic that triggered it.
        drift: f64,
    },
    /// The live analyzer's stopping rule fired: the live CI half-width met
    /// its target and profiling stops collecting.
    EarlyStop {
        /// Units profiled when the stop was requested.
        units: u64,
        /// The live CI half-width at stop.
        half_width: f64,
        /// The (absolute) half-width target that was met.
        target: f64,
    },
    /// A service job entered the runner's queue (`simprof-service`
    /// lifecycle; stamped by the runner's own clock, not a context).
    JobQueued {
        /// The job's id (shard file stem).
        job: String,
        /// Tenant the job is accounted to.
        tenant: String,
    },
    /// A worker thread picked a queued service job up and started it.
    JobStarted {
        /// The job's id.
        job: String,
        /// Tenant the job is accounted to.
        tenant: String,
        /// 0-based worker-thread index running the job.
        worker: u64,
    },
    /// A service job sealed its shard and was admitted into the store.
    JobFinished {
        /// The job's id.
        job: String,
        /// Tenant the shard was accounted to.
        tenant: String,
        /// Sampling units in the sealed shard.
        units: u64,
        /// Sealed shard size in bytes.
        bytes: u64,
        /// Peak bytes charged to the job's allocation slot.
        peak_bytes: u64,
        /// Microseconds the job waited between queueing and start.
        queue_us: u64,
        /// Microseconds the job ran for.
        run_us: u64,
    },
    /// A service job failed; its error and any partial shard stayed with
    /// the job (the runner deletes stray files).
    JobFailed {
        /// The job's id.
        job: String,
        /// Tenant the job was accounted to.
        tenant: String,
        /// The job's error, verbatim.
        error: String,
    },
}

impl EventKind {
    /// The schema discriminator string for this kind.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::SpanOpen { .. } => "span_open",
            EventKind::SpanClose { .. } => "span_close",
            EventKind::Counter { .. } => "counter",
            EventKind::Gauge { .. } => "gauge",
            EventKind::Hist { .. } => "hist",
            EventKind::Fault { .. } => "fault",
            EventKind::UnitClosed { .. } => "unit_closed",
            EventKind::Salvage { .. } => "salvage",
            EventKind::SinkRetry { .. } => "sink_retry",
            EventKind::SinkDegraded { .. } => "sink_degraded",
            EventKind::PhaseReformed { .. } => "phase_reformed",
            EventKind::EarlyStop { .. } => "early_stop",
            EventKind::JobQueued { .. } => "job_queued",
            EventKind::JobStarted { .. } => "job_started",
            EventKind::JobFinished { .. } => "job_finished",
            EventKind::JobFailed { .. } => "job_failed",
        }
    }
}

impl Event {
    /// Renders the event as one flat JSON object: the four envelope keys
    /// plus the kind's payload fields (the on-disk JSONL schema).
    pub fn to_json_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("v".to_owned(), Value::from(self.v as u64)),
            ("seq".to_owned(), Value::from(self.seq)),
            ("ts_us".to_owned(), Value::from(self.ts_us)),
            ("kind".to_owned(), Value::from(self.kind.label())),
        ];
        let mut push = |k: &str, v: Value| fields.push((k.to_owned(), v));
        match &self.kind {
            EventKind::SpanOpen { id, parent, name, thread } => {
                push("id", Value::from(*id));
                if let Some(p) = parent {
                    push("parent", Value::from(*p));
                }
                push("name", Value::from(name.as_str()));
                push("thread", Value::from(*thread as u64));
            }
            EventKind::SpanClose { id, name, thread, elapsed_us } => {
                push("id", Value::from(*id));
                push("name", Value::from(name.as_str()));
                push("thread", Value::from(*thread as u64));
                push("elapsed_us", Value::from(*elapsed_us));
            }
            EventKind::Counter { name, delta, total } => {
                push("name", Value::from(name.as_str()));
                push("delta", Value::from(*delta));
                push("total", Value::from(*total));
            }
            EventKind::Gauge { name, value } => {
                push("name", Value::from(name.as_str()));
                push("value", Value::from(*value));
            }
            EventKind::Hist { name, value } => {
                push("name", Value::from(name.as_str()));
                push("value", Value::from(*value));
            }
            EventKind::Fault { name, detail } => {
                push("name", Value::from(name.as_str()));
                push("detail", detail.clone());
            }
            EventKind::UnitClosed { unit, instrs, cycles, snapshots, truncated } => {
                push("unit", Value::from(*unit));
                push("instrs", Value::from(*instrs));
                push("cycles", Value::from(*cycles));
                push("snapshots", Value::from(*snapshots));
                push("truncated", Value::from(*truncated));
            }
            EventKind::Salvage { path, recovered_units, bad_frames, skipped_bytes, resyncs } => {
                push("path", Value::from(path.as_str()));
                push("recovered_units", Value::from(*recovered_units));
                push("bad_frames", Value::from(*bad_frames));
                push("skipped_bytes", Value::from(*skipped_bytes));
                push("resyncs", Value::from(*resyncs));
            }
            EventKind::SinkRetry { target, attempt, error } => {
                push("target", Value::from(target.as_str()));
                push("attempt", Value::from(*attempt));
                push("error", Value::from(error.as_str()));
            }
            EventKind::SinkDegraded { target, retries, error } => {
                push("target", Value::from(target.as_str()));
                push("retries", Value::from(*retries));
                push("error", Value::from(error.as_str()));
            }
            EventKind::PhaseReformed { units, old_k, new_k, drift } => {
                push("units", Value::from(*units));
                push("old_k", Value::from(*old_k));
                push("new_k", Value::from(*new_k));
                push("drift", Value::from(*drift));
            }
            EventKind::EarlyStop { units, half_width, target } => {
                push("units", Value::from(*units));
                push("half_width", Value::from(*half_width));
                push("target", Value::from(*target));
            }
            EventKind::JobQueued { job, tenant } => {
                push("job", Value::from(job.as_str()));
                push("tenant", Value::from(tenant.as_str()));
            }
            EventKind::JobStarted { job, tenant, worker } => {
                push("job", Value::from(job.as_str()));
                push("tenant", Value::from(tenant.as_str()));
                push("worker", Value::from(*worker));
            }
            EventKind::JobFinished { job, tenant, units, bytes, peak_bytes, queue_us, run_us } => {
                push("job", Value::from(job.as_str()));
                push("tenant", Value::from(tenant.as_str()));
                push("units", Value::from(*units));
                push("bytes", Value::from(*bytes));
                push("peak_bytes", Value::from(*peak_bytes));
                push("queue_us", Value::from(*queue_us));
                push("run_us", Value::from(*run_us));
            }
            EventKind::JobFailed { job, tenant, error } => {
                push("job", Value::from(job.as_str()));
                push("tenant", Value::from(tenant.as_str()));
                push("error", Value::from(error.as_str()));
            }
        }
        Value::Object(fields)
    }
}

/// Writes events as JSON Lines: one compact object per line, prefixed by
/// a `meta` header line. I/O errors after creation are swallowed (the log
/// is best-effort telemetry and must never fail the run).
pub struct JsonlEventWriter {
    out: BufWriter<File>,
}

impl JsonlEventWriter {
    /// Creates (truncating) the log file at `path` and writes the `meta`
    /// header line.
    pub fn create(path: &Path) -> Result<Self, String> {
        let file = File::create(path)
            .map_err(|e| format!("cannot create event log {}: {e}", path.display()))?;
        let mut writer = Self { out: BufWriter::new(file) };
        let header = Value::Object(vec![
            ("v".to_owned(), Value::from(EVENT_SCHEMA_VERSION as u64)),
            ("seq".to_owned(), Value::from(0u64)),
            ("ts_us".to_owned(), Value::from(0u64)),
            ("kind".to_owned(), Value::from("meta")),
            ("generator".to_owned(), Value::from("simprof-obs")),
        ]);
        writer.write_line(&header);
        Ok(writer)
    }

    fn write_line(&mut self, value: &Value) {
        if let Ok(line) = serde_json::to_string(value) {
            let _ = self.out.write_all(line.as_bytes());
            let _ = self.out.write_all(b"\n");
        }
    }
}

impl EventSink for JsonlEventWriter {
    fn emit(&mut self, event: &Event) {
        let line = event.to_json_value();
        self.write_line(&line);
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Collects events into a shared `Vec` — for tests that need to inspect
/// what was emitted after the session uninstalls the sink.
pub struct CollectSink(pub Arc<Mutex<Vec<Event>>>);

impl EventSink for CollectSink {
    fn emit(&mut self, event: &Event) {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).push(event.clone());
    }
}

/// Fans every event out to several sinks, in order. Lets one emitter
/// feed a durable JSONL log and a live progress view at the same time.
pub struct TeeSink(pub Vec<Box<dyn EventSink>>);

impl EventSink for TeeSink {
    fn emit(&mut self, event: &Event) {
        for sink in &mut self.0 {
            sink.emit(event);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.0 {
            sink.flush();
        }
    }
}

/// Emission hook for engine fault injection: records the fault's metric
/// name plus its serialized detail. No-op unless [`streaming`].
pub fn fault_event(name: &str, detail: Value) {
    let Some(ctx) = context::streaming_ctx() else {
        return;
    };
    ctx.emit(EventKind::Fault { name: name.to_owned(), detail });
}

/// Emission hook for the profiler's unit-closed path. No-op unless
/// [`streaming`].
pub fn unit_closed(unit: u64, instrs: u64, cycles: u64, snapshots: u64, truncated: bool) {
    let Some(ctx) = context::streaming_ctx() else {
        return;
    };
    ctx.emit(EventKind::UnitClosed { unit, instrs, cycles, snapshots, truncated });
}

/// Emission hook for trace salvage recovery: records what a salvage pass
/// recovered and what it skipped. No-op unless [`streaming`].
pub fn salvage_event(
    path: &str,
    recovered_units: u64,
    bad_frames: u64,
    skipped_bytes: u64,
    resyncs: u64,
) {
    let Some(ctx) = context::streaming_ctx() else {
        return;
    };
    ctx.emit(EventKind::Salvage {
        path: path.to_owned(),
        recovered_units,
        bad_frames,
        skipped_bytes,
        resyncs,
    });
}

/// Emission hook for a trace sink retrying a transient I/O error. No-op
/// unless [`streaming`].
pub fn sink_retry(target: &str, attempt: u64, error: &str) {
    let Some(ctx) = context::streaming_ctx() else {
        return;
    };
    ctx.emit(EventKind::SinkRetry { target: target.to_owned(), attempt, error: error.to_owned() });
}

/// Emission hook for a trace sink exhausting its retries and degrading.
/// No-op unless [`streaming`].
pub fn sink_degraded(target: &str, retries: u64, error: &str) {
    let Some(ctx) = context::streaming_ctx() else {
        return;
    };
    ctx.emit(EventKind::SinkDegraded {
        target: target.to_owned(),
        retries,
        error: error.to_owned(),
    });
}

/// Emission hook for a live phase re-formation. No-op unless
/// [`streaming`].
pub fn phase_reformed(units: u64, old_k: u64, new_k: u64, drift: f64) {
    let Some(ctx) = context::streaming_ctx() else {
        return;
    };
    ctx.emit(EventKind::PhaseReformed { units, old_k, new_k, drift });
}

/// Emission hook for the live analyzer's early stop. No-op unless
/// [`streaming`].
pub fn early_stop(units: u64, half_width: f64, target: f64) {
    let Some(ctx) = context::streaming_ctx() else {
        return;
    };
    ctx.emit(EventKind::EarlyStop { units, half_width, target });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_increasing_seq_and_flat_schema() {
        let ctx = crate::ObsContext::new();
        let _installed = ctx.install();
        let store = Arc::new(Mutex::new(Vec::new()));
        install(Box::new(CollectSink(Arc::clone(&store))));
        {
            let _s = crate::span!("evt.outer");
            crate::counter_add("evt.count", 3);
        }
        assert!(uninstall());
        ctx.stop();

        let events = store.lock().unwrap();
        assert!(events.len() >= 3, "open + counter + close");
        for w in events.windows(2) {
            assert!(w[1].seq > w[0].seq, "seq strictly increasing");
            assert!(w[1].ts_us >= w[0].ts_us, "ts non-decreasing");
        }
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert!(kinds.contains(&"span_open"));
        assert!(kinds.contains(&"span_close"));
        assert!(kinds.contains(&"counter"));

        let flat = events[0].to_json_value();
        let obj = flat.as_object().expect("flat object");
        for key in ["v", "seq", "ts_us", "kind"] {
            assert!(obj.iter().any(|(k, _)| k == key), "missing envelope key {key}");
        }
    }

    #[test]
    fn no_sink_means_no_streaming() {
        // A recording context with no sink: hooks are no-ops.
        let ctx = crate::ObsContext::new();
        let _installed = ctx.install();
        assert!(!streaming());
        fault_event("engine.faults.crash", Value::Null);
        unit_closed(1, 2, 3, 4, false);
        assert!(!uninstall(), "nothing was installed");
    }

    #[test]
    fn jsonl_writer_produces_parseable_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("simprof_events_test_{}.jsonl", std::process::id()));
        let ctx = crate::ObsContext::new();
        let _installed = ctx.install();
        install(Box::new(JsonlEventWriter::create(&path).expect("create log")));
        {
            let _s = crate::span!("evt.jsonl");
        }
        ctx.stop();

        let text = std::fs::read_to_string(&path).expect("read log");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "meta + open + close, got {}", lines.len());
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        let obj = first.as_object().unwrap();
        assert!(obj.iter().any(|(k, v)| k == "kind" && v.as_str() == Some("meta")));
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.as_object().is_some());
        }
    }
}
