//! Hierarchical RAII span timing on monotonic clocks.
//!
//! A [`SpanGuard`] measures the wall-clock between its creation and drop
//! with [`Instant`] (monotonic — wall-clock adjustments cannot produce
//! negative or skewed durations). Guards nest through a thread-local stack:
//! a span entered while another is open on the *same thread* becomes its
//! child. Spans opened on other threads — the parallel substrate's workers
//! — root at their own thread instead of mis-nesting under whatever the
//! driver thread happened to have open, and carry a stable small integer
//! thread id so the report can attribute worker time correctly.
//!
//! When no session is active ([`crate::enabled`] is false), entering a
//! span is one relaxed atomic load: no clock read, no allocation, no lock.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Completed-span storage. Guards append on drop; [`drain`] empties it.
static RECORDS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Monotonic span-id source. Ids order spans by *entry* (creation) time,
/// which the report uses to keep sibling order stable even though records
/// are appended at completion.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small sequential thread ids (0 = first thread that ever opened a span).
static NEXT_THREAD_ID: AtomicUsize = AtomicUsize::new(0);

/// Process-wide monotonic epoch; all span start offsets are relative to it.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's small id, assigned on first span entry.
    static THREAD_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

fn thread_id() -> usize {
    THREAD_ID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process span epoch (the shared clock for span
/// start offsets, event-log timestamps, and time-series samples).
pub(crate) fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One completed span, as stored in the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Entry-ordered id (unique within the process).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// The span's label.
    pub name: String,
    /// Small sequential id of the thread the span ran on.
    pub thread: usize,
    /// Microseconds between the process epoch and span entry.
    pub start_us: u64,
    /// Microseconds between span entry and span drop (monotonic).
    pub elapsed_us: u64,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    thread: usize,
    start: Instant,
}

/// An open span. Created by [`SpanGuard::enter`] (or the [`crate::span!`]
/// macro); the measured interval closes when the guard drops.
#[must_use = "a span measures the interval until the guard drops"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Opens a span named `name`. When no session is collecting, this is a
    /// no-op costing one atomic load; the label is not even copied.
    pub fn enter(name: &str) -> Self {
        if !crate::enabled() {
            return Self { active: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let thread = thread_id();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        if crate::events::streaming() {
            crate::events::emit(crate::events::EventKind::SpanOpen {
                id,
                parent,
                name: name.to_owned(),
                thread,
            });
        }
        Self {
            active: Some(ActiveSpan {
                id,
                parent,
                name: name.to_owned(),
                thread,
                start: Instant::now(),
            }),
        }
    }

    /// Whether this guard is actually recording (a session is active).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let elapsed_us = active.start.elapsed().as_micros() as u64;
        let start_us = active.start.duration_since(epoch()).as_micros() as u64;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order per thread, so the top is ours; be
            // defensive anyway (a guard moved across threads would desync).
            if s.last() == Some(&active.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&x| x == active.id) {
                s.remove(pos);
            }
        });
        if crate::events::streaming() {
            crate::events::emit(crate::events::EventKind::SpanClose {
                id: active.id,
                name: active.name.clone(),
                thread: active.thread,
                elapsed_us,
            });
        }
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            thread: active.thread,
            start_us,
            elapsed_us,
        };
        records_lock().push(record);
    }
}

fn records_lock() -> std::sync::MutexGuard<'static, Vec<SpanRecord>> {
    RECORDS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Opens a [`SpanGuard`] named by the expression. Bind it to keep the span
/// open: `let _guard = obs::span!("choose_k");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Clears all completed spans (session start).
pub(crate) fn reset() {
    records_lock().clear();
    // Pin the epoch before any span of the session starts, so start
    // offsets are meaningful from the first span on.
    let _ = epoch();
}

/// Removes and returns all completed spans (session finish).
pub(crate) fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *records_lock())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Session-driven behaviour is covered in `crate::tests`; these pin the
    // guard mechanics that do not need a live session.

    #[test]
    fn disabled_guard_never_touches_the_stack() {
        // Regardless of other tests' sessions, a guard that recorded
        // nothing must not pop anything on drop.
        let g = SpanGuard { active: None };
        SPAN_STACK.with(|s| s.borrow_mut().push(999));
        drop(g);
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            assert_eq!(s.pop(), Some(999));
        });
    }

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, other);
    }
}
