//! Hierarchical RAII span timing on monotonic clocks.
//!
//! A [`SpanGuard`] measures the wall-clock between its creation and drop
//! with [`Instant`] (monotonic — wall-clock adjustments cannot produce
//! negative or skewed durations). Guards nest through a thread-local stack:
//! a span entered while another is open on the *same thread and context*
//! becomes its child. Spans opened on other threads — the parallel
//! substrate's workers — root at their own thread instead of mis-nesting
//! under whatever the driver thread happened to have open, and carry a
//! stable small per-context thread id so the report can attribute worker
//! time correctly.
//!
//! Span ids, thread ids, and completed-span storage all live in the
//! resolved [`crate::ObsContext`], so concurrent jobs collect disjoint
//! span sets. When no context is recording ([`crate::enabled`] is false),
//! entering a span is one relaxed atomic load: no clock read, no
//! allocation, no lock.

use std::cell::RefCell;
use std::sync::{MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::context::{self, ObsContext};

/// Process-wide monotonic epoch; all span start offsets are relative to it.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// `(context id, span id)` of the spans currently open on this thread,
    /// innermost last. Tagging entries with the owning context keeps two
    /// jobs interleaved on one thread from adopting each other's parents.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Pins the epoch (context creation), so start offsets are meaningful
/// from the first span on.
pub(crate) fn pin_epoch() {
    let _ = epoch();
}

/// Microseconds since the process span epoch (the shared clock for span
/// start offsets, event-log timestamps, and time-series samples).
pub(crate) fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One completed span, as stored in the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Entry-ordered id (unique within the owning context).
    pub id: u64,
    /// Id of the enclosing span on the same thread and context, if any.
    pub parent: Option<u64>,
    /// The span's label.
    pub name: String,
    /// Small sequential per-context id of the thread the span ran on.
    pub thread: usize,
    /// Microseconds between the process epoch and span entry.
    pub start_us: u64,
    /// Microseconds between span entry and span drop (monotonic).
    pub elapsed_us: u64,
}

struct ActiveSpan {
    ctx: ObsContext,
    id: u64,
    parent: Option<u64>,
    name: String,
    thread: usize,
    start: Instant,
}

/// An open span. Created by [`SpanGuard::enter`] (or the [`crate::span!`]
/// macro); the measured interval closes when the guard drops.
#[must_use = "a span measures the interval until the guard drops"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Opens a span named `name` in the calling thread's current context.
    /// When no context is recording, this is a no-op costing one atomic
    /// load; the label is not even copied.
    pub fn enter(name: &str) -> Self {
        let Some(ctx) = context::current_recording() else {
            return Self { active: None };
        };
        let id = ctx.inner().next_span_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let thread = ctx.thread_id_for_current();
        let ctx_id = ctx.id();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.iter().rev().find(|(c, _)| *c == ctx_id).map(|&(_, id)| id);
            s.push((ctx_id, id));
            parent
        });
        if ctx.streaming() {
            ctx.emit(crate::events::EventKind::SpanOpen {
                id,
                parent,
                name: name.to_owned(),
                thread,
            });
        }
        Self {
            active: Some(ActiveSpan {
                ctx,
                id,
                parent,
                name: name.to_owned(),
                thread,
                start: Instant::now(),
            }),
        }
    }

    /// Whether this guard is actually recording (a context resolved at
    /// entry).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let elapsed_us = active.start.elapsed().as_micros() as u64;
        let start_us = active.start.duration_since(epoch()).as_micros() as u64;
        let key = (active.ctx.id(), active.id);
        let _ = SPAN_STACK.try_with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order per thread, so the top is ours; be
            // defensive anyway (a guard moved across threads would desync).
            if s.last() == Some(&key) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&x| x == key) {
                s.remove(pos);
            }
        });
        if active.ctx.streaming() {
            active.ctx.emit(crate::events::EventKind::SpanClose {
                id: active.id,
                name: active.name.clone(),
                thread: active.thread,
                elapsed_us,
            });
        }
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            thread: active.thread,
            start_us,
            elapsed_us,
        };
        records_lock(&active.ctx).push(record);
    }
}

fn records_lock(ctx: &ObsContext) -> MutexGuard<'_, Vec<SpanRecord>> {
    ctx.inner().spans.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Opens a [`SpanGuard`] named by the expression. Bind it to keep the span
/// open: `let _guard = obs::span!("choose_k");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Context-driven behaviour is covered in `crate::tests` and
    // `crate::context::tests`; these pin the guard mechanics.

    #[test]
    fn disabled_guard_never_touches_the_stack() {
        // Regardless of other tests' contexts, a guard that recorded
        // nothing must not pop anything on drop.
        let g = SpanGuard { active: None };
        SPAN_STACK.with(|s| s.borrow_mut().push((u64::MAX, 999)));
        drop(g);
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            assert_eq!(s.pop(), Some((u64::MAX, 999)));
        });
    }

    #[test]
    fn interleaved_contexts_keep_parents_within_their_own_context() {
        let a = ObsContext::new();
        let b = ObsContext::new();
        {
            let ga = a.install();
            let _outer_a = crate::span!("a.outer");
            drop(ga);
            let gb = b.install();
            {
                // `b` has no open span of its own: this must root, not
                // adopt `a.outer` as parent.
                let _only_b = crate::span!("b.only");
            }
            drop(gb);
            let _ga = a.install();
            let _inner_a = crate::span!("a.inner");
        }
        let ra = a.finish_report();
        let rb = b.finish_report();
        let outer = ra.find_span("a.outer").expect("a.outer");
        assert_eq!(outer.children.len(), 1, "a.inner nests under a.outer");
        assert_eq!(outer.children[0].name, "a.inner");
        let only = rb.find_span("b.only").expect("b.only");
        assert!(only.children.is_empty());
        assert!(rb.find_span("a.outer").is_none());
    }
}
