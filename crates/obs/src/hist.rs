//! Log2-bucket histograms with bounded-error quantiles.
//!
//! A [`Log2Histogram`] buckets positive observations by the floor of their
//! base-2 logarithm, so bucket `e` covers `[2^e, 2^(e+1))` and costs one
//! map entry regardless of how many observations land in it. Quantile
//! queries walk the (sorted) buckets and return the selected bucket's
//! upper edge clamped to the observed `[min, max]`, which bounds the error
//! by one bucket width: for any `q`, `|quantile(q) − exact sorted-order
//! quantile| ≤ 2^e` where `e` is the exact quantile's bucket exponent
//! (`tests/quantile_properties.rs` proves this property-style).
//!
//! Non-positive observations fall into a single sentinel bucket below all
//! exponents; exponents clamp to [[`MIN_EXP`], [`MAX_EXP`]] so subnormal
//! and astronomically large values cannot grow the map without bound (the
//! clamped edge buckets widen to cover the overflow, see
//! [`Log2Histogram::bucket_width_of`]).

use serde::{Deserialize, Serialize};

/// Smallest tracked bucket exponent; values in `(0, 2^(MIN_EXP+1))` share
/// the bucket `MIN_EXP`.
pub const MIN_EXP: i32 = -32;
/// Largest tracked bucket exponent; values `≥ 2^MAX_EXP` share the bucket
/// `MAX_EXP`.
pub const MAX_EXP: i32 = 127;

/// A mergeable log2-bucket histogram (count / sum / min / max plus sparse
/// per-exponent counts).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Log2Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Observations `≤ 0` (they have no log2 bucket).
    nonpos: u64,
    /// `(clamped bucket exponent, count)` pairs for positive observations,
    /// sorted ascending by exponent. At most `MAX_EXP − MIN_EXP + 1`
    /// entries, so linear bumps stay cheap.
    buckets: Vec<(i32, u64)>,
}

/// Clamped bucket exponent of a positive value.
fn exponent(v: f64) -> i32 {
    debug_assert!(v > 0.0);
    (v.log2().floor() as i32).clamp(MIN_EXP, MAX_EXP)
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the bucket for exponent `e`, keeping `buckets` sorted.
    fn bump(&mut self, e: i32, by: u64) {
        match self.buckets.binary_search_by_key(&e, |&(exp, _)| exp) {
            Ok(i) => self.buckets[i].1 += by,
            Err(i) => self.buckets.insert(i, (e, by)),
        }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if value > 0.0 {
            self.bump(exponent(value), 1);
        } else {
            self.nonpos += 1;
        }
    }

    /// Merges `other` into `self`. Bucket counts, `count`, `min` and `max`
    /// equal those of a histogram built from the concatenated inputs;
    /// `sum` may differ by float-addition reassociation only.
    pub fn merge(&mut self, other: &Log2Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.nonpos += other.nonpos;
        for &(e, c) in &other.buckets {
            self.bump(e, c);
        }
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, or `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean observation (`sum / count`), or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0 < q ≤ 1`), or `0.0` when empty.
    ///
    /// Targets the `ceil(q·count)`-th smallest observation (1-based, so
    /// `q = 0.5` on 4 observations targets the 2nd). The walk selects the
    /// bucket that sorted-order indexing would select, and the returned
    /// upper bucket edge (clamped to `[min, max]`) is therefore within one
    /// bucket width of the exact value.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.nonpos;
        if cum >= target {
            // The target lands among non-positive observations; 0.0 is
            // their upper edge.
            return 0.0f64.clamp(self.min, self.max);
        }
        for &(e, c) in &self.buckets {
            cum += c;
            if cum >= target {
                let upper = if e >= MAX_EXP {
                    // The clamped top bucket has no finite upper edge;
                    // `max` is the tightest bound we track.
                    self.max
                } else {
                    2f64.powi(e + 1)
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Width of the bucket the value `v` falls into: the quantile error
    /// bound when the exact quantile is `v`. Non-positive values share the
    /// zero-width sentinel bucket; the clamped bottom bucket spans
    /// `(0, 2^(MIN_EXP+1))`; the clamped top bucket is unbounded.
    pub fn bucket_width_of(v: f64) -> f64 {
        if v <= 0.0 {
            return 0.0;
        }
        let e = exponent(v);
        if e >= MAX_EXP {
            f64::INFINITY
        } else if e <= MIN_EXP {
            2f64.powi(MIN_EXP + 1)
        } else {
            2f64.powi(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[f64]) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for &v in values {
            h.observe(v);
        }
        h
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_selects_sorted_order_bucket() {
        // Values spread over distinct buckets: [1,2), [2,4), [8,16).
        let h = hist(&[1.5, 3.0, 9.0, 9.5]);
        // p50 targets the 2nd smallest (3.0, bucket 1): upper edge 4.
        assert_eq!(h.quantile(0.5), 4.0);
        // p99 targets the 4th (9.5, bucket 3): upper edge 16 clamps to max.
        assert_eq!(h.quantile(0.99), 9.5);
        // p-min targets the 1st (1.5, bucket 0): upper edge 2.
        assert_eq!(h.quantile(0.01), 2.0);
    }

    #[test]
    fn nonpositive_values_land_in_the_sentinel_bucket() {
        let h = hist(&[-2.0, 0.0, 4.0]);
        assert_eq!(h.count(), 3);
        // p50 targets the 2nd smallest (0.0): sentinel upper edge 0,
        // clamped into [min, max] = [-2, 4].
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), -2.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = hist(&[0.5, 10.0, 300.0]);
        let b = hist(&[2.0, 2.5, 1e-12]);
        let mut merged = a.clone();
        merged.merge(&b);
        let whole = hist(&[0.5, 10.0, 300.0, 2.0, 2.5, 1e-12]);
        assert_eq!(merged, whole);
    }

    #[test]
    fn extreme_values_clamp_to_edge_buckets() {
        let h = hist(&[1e-300, 1e300]);
        // Both recorded, neither grew the map outside the clamp range.
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), 1e300, "top bucket clamps to max");
        assert!(h.quantile(0.25) <= 2f64.powi(MIN_EXP + 1));
        assert_eq!(Log2Histogram::bucket_width_of(1e300), f64::INFINITY);
        assert_eq!(Log2Histogram::bucket_width_of(1e-300), 2f64.powi(MIN_EXP + 1));
    }

    #[test]
    fn quantile_of_empty_is_zero_at_every_q() {
        // The tenant aggregation in FleetReport queries p50/p95/p99 on
        // histograms that may have seen no jobs; pin the empty answer.
        let h = Log2Histogram::new();
        for q in [0.001, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "empty quantile({q})");
        }
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity_in_both_directions() {
        let a = hist(&[0.25, 7.0, 4096.0]);
        let empty = Log2Histogram::new();

        // Non-empty ← empty: nothing changes, including min/max.
        let mut left = a.clone();
        left.merge(&empty);
        assert_eq!(left, a);

        // Empty ← non-empty: adopts everything, including min/max (a
        // naive `min(0.0, other.min)` would corrupt min here).
        let mut right = Log2Histogram::new();
        right.merge(&a);
        assert_eq!(right, a);
        assert_eq!(right.min(), 0.25);
        assert_eq!(right.max(), 4096.0);

        // Empty ← empty stays empty and keeps quantiles well-defined.
        let mut both = Log2Histogram::new();
        both.merge(&empty);
        assert_eq!(both.count(), 0);
        assert_eq!(both.quantile(0.99), 0.0);
    }

    #[test]
    fn all_zero_observations_quantile_to_zero() {
        // A scripted fixed clock makes every duration 0; the fairness
        // histograms must stay well-defined on all-zero input.
        let h = hist(&[0.0, 0.0, 0.0]);
        assert_eq!(h.count(), 3);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(h.quantile(q), 0.0);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let h = hist(&[1.0, 2.0, 65.0]);
        let json = serde_json::to_string(&h).unwrap();
        let back: Log2Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
