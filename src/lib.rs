//! # SimProf
//!
//! A Rust reproduction of **"SimProf: A Sampling Framework for Data Analytic
//! Workloads"** (Huang, Nai, Kumar, Kim, Kim — IPDPS 2017).
//!
//! SimProf selects *simulation points* — a small, statistically representative
//! subset of a long-running data-analytic job's execution — so that slow
//! microarchitectural simulation only needs to run on that subset. It
//! identifies *phases* from call-stack signatures, then applies stratified
//! random sampling with Neyman optimal allocation to pick points inside each
//! phase, and finally prunes work across inputs with an input-sensitivity
//! test.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`stats`] — clustering, regression feature scoring, stratified sampling.
//! * [`sim`] — the machine model (cache hierarchy, CPI cost model, counters).
//! * [`engine`] — Spark-like and Hadoop-like execution engines with
//!   instrumented call stacks, plus the HDFS model.
//! * [`profiler`] — the sampling manager, unit sinks, and collectors
//!   producing [`profiler::ProfileTrace`]s.
//! * [`trace`] — the chunked on-disk trace format: streaming
//!   [`trace::TraceWriter`]/[`trace::TraceReader`] so profiling writes while
//!   the engine runs and analysis reads without materializing the trace.
//! * [`core`] — the SimProf pipeline: phase formation, phase sampling,
//!   baselines, input-sensitivity analysis.
//! * [`workloads`] — six BigDataBench-style benchmarks on both engines and
//!   the data synthesizers (Zipfian text, Kronecker graphs).
//! * [`obs`] — the observability layer: job-scoped [`obs::ObsContext`]s,
//!   span timing, the metrics registry, and versioned run reports
//!   (`simprof run --report out.json`).
//! * [`service`] — the concurrent multi-job profiling service: the
//!   [`service::JobRunner`] and the sharded on-disk trace store behind
//!   `simprof serve`.
//!
//! ## Quickstart
//!
//! ```
//! use simprof::workloads::{Benchmark, Framework, WorkloadConfig};
//! use simprof::core::{SimProf, SimProfConfig};
//!
//! // Profile WordCount on the Spark-like engine (tiny config for doctest).
//! let cfg = WorkloadConfig::tiny(42);
//! let trace = Benchmark::WordCount.run(Framework::Spark, &cfg);
//!
//! // Form phases and pick 20 simulation points.
//! let analysis = SimProf::new(SimProfConfig::default()).analyze(&trace).expect("valid trace");
//! let points = analysis.select_points(20, 42);
//! assert!(!points.points.is_empty());
//! ```

pub use simprof_core as core;
pub use simprof_engine as engine;
pub use simprof_obs as obs;
pub use simprof_profiler as profiler;
pub use simprof_service as service;
pub use simprof_sim as sim;
pub use simprof_stats as stats;
pub use simprof_trace as trace;
pub use simprof_workloads as workloads;
