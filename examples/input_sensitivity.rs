//! Input-sensitivity analysis (paper §III-D / §IV-E, Algorithm 1).
//!
//! ```text
//! cargo run --release --example input_sensitivity
//! ```
//!
//! Trains a phase model for Connected Components on the Google Kronecker
//! graph, then classifies seven reference inputs (Facebook … Road) against
//! the training phase centers and applies the Eq. 6 mean/stddev test. Phases
//! that no reference input moves are *input insensitive*: their simulation
//! points can be skipped when exploring new inputs.

use simprof::core::{input_sensitivity, SimProf, SimProfConfig};
use simprof::workloads::{Benchmark, GraphInput, Kronecker, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig::paper(42);
    let simprof = SimProf::new(SimProfConfig { seed: 42, ..Default::default() });

    // Train on Google (Table II's training input).
    let google = Kronecker::for_input(GraphInput::Google, cfg.graph_scale, cfg.graph_degree)
        .generate(cfg.sub_seed(1000));
    let train = Benchmark::ConnectedComponents.run_spark_on_graph(&cfg, &google);
    let analysis = simprof.analyze(&train.trace).expect("valid trace");
    println!("training input Google: {} units, {} phases", train.trace.units.len(), analysis.k());

    // Profile the seven reference inputs.
    let mut references = Vec::new();
    let mut names = Vec::new();
    for &input in GraphInput::ALL.iter().filter(|&&i| i != GraphInput::Google) {
        let g = Kronecker::for_input(input, cfg.graph_scale, cfg.graph_degree)
            .generate(cfg.sub_seed(1001 + input as u64));
        let out = Benchmark::ConnectedComponents.run_spark_on_graph(&cfg, &g);
        println!(
            "  reference {:<10} {} units, oracle CPI {:.3}",
            input.label(),
            out.trace.units.len(),
            out.trace.oracle_cpi()
        );
        references.push(out.trace);
        names.push(input.label());
    }
    let refs: Vec<&_> = references.iter().collect();

    // Algorithm 1: per-phase Eq. 6 tests across all reference inputs.
    let report = input_sensitivity(&analysis.model, &train.trace, &refs, 0.10);
    println!("\nper-phase outcome (threshold 10%):");
    for h in 0..analysis.k() {
        let movers: Vec<&str> = report
            .per_reference
            .iter()
            .zip(&names)
            .filter(|(passes, _)| passes[h])
            .map(|(_, &n)| n)
            .collect();
        println!(
            "  phase {h} (weight {:.1}%, train CPI {:.3}±{:.3}): {}",
            analysis.weights[h] * 100.0,
            report.train_stats[h].mean,
            report.train_stats[h].stddev,
            if movers.is_empty() {
                "input INSENSITIVE".to_string()
            } else {
                format!("input sensitive (moved by {movers:?})")
            }
        );
    }

    // Fig. 12: the reference-input simulation budget.
    let points = analysis.select_points(20, 7);
    let frac = report.sensitive_point_fraction(&points);
    println!("\n{} of {} phases are input sensitive", report.sensitive_count(), analysis.k());
    println!(
        "of {} simulation points, {:.0}% lie in sensitive phases → {:.0}% of the \
         simulation budget can be skipped for each new input",
        points.len(),
        frac * 100.0,
        (1.0 - frac) * 100.0
    );
}
