//! Sampling-budget exploration: error and confidence interval vs sample
//! size (the user-facing workflow of paper §III-C).
//!
//! ```text
//! cargo run --release --example sampling_budget
//! ```
//!
//! The paper's procedure: pick a sample size that fits the simulation
//! budget, simulate the selected points, check the confidence interval, and
//! grow the sample until the error bound is acceptable. This example sweeps
//! the budget for Connected Components on Spark and shows the measured error
//! against the statistical bound — and how the SECOND and SRS baselines
//! compare at the same budget.

use simprof::core::{second_points_by_cycles, srs_points, SimProf, SimProfConfig};
use simprof::stats::mean;
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig::paper(42);
    let out = Benchmark::ConnectedComponents.run_full(Framework::Spark, &cfg);
    let analysis = SimProf::new(SimProfConfig { seed: 42, ..Default::default() })
        .analyze(&out.trace)
        .expect("valid trace");
    let oracle = analysis.oracle_cpi();
    let total = out.trace.units.len();
    println!("cc_sp: {} units, oracle CPI {:.4}, {} phases\n", total, oracle, analysis.k());

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "n", "SimProf err", "99.7% bound", "SRS err", "coverage"
    );
    for n in [5usize, 10, 20, 40, 80, 160] {
        if n > total {
            break;
        }
        // Average measured error over repetitions; the CI bound comes from
        // Eq. 4 and should dominate the measured error almost always.
        let reps = 40u64;
        let mut sp_err = 0.0;
        let mut srs_err = 0.0;
        let mut bound = 0.0;
        let mut covered = 0u32;
        for rep in 0..reps {
            let points = analysis.select_points(n, 9000 + rep);
            let est = analysis.estimate(&points, 3.0);
            sp_err += (est.mean_cpi - oracle).abs() / oracle;
            bound += 3.0 * est.se / oracle;
            if est.ci.0 <= oracle && oracle <= est.ci.1 {
                covered += 1;
            }
            let srs = srs_points(&out.trace, n, 17_000 + rep);
            srs_err += (srs.predicted_cpi - oracle).abs() / oracle;
        }
        println!(
            "{:>6} {:>11.2}% {:>11.2}% {:>11.2}% {:>9}/{}",
            n,
            sp_err / reps as f64 * 100.0,
            bound / reps as f64 * 100.0,
            srs_err / reps as f64 * 100.0,
            covered,
            reps
        );
    }

    // The SECOND baseline at a "10-second" cycle budget for reference.
    let second = second_points_by_cycles(&out.trace, 6_000_000);
    let second_cpis: Vec<f64> =
        second.points.iter().map(|&i| out.trace.units[i as usize].cpi()).collect();
    println!(
        "\nSECOND interval: {} contiguous units (mean CPI {:.4}) → {:.2}% error — a \
         single window cannot represent a staged job",
        second.points.len(),
        mean(&second_cpis),
        (second.predicted_cpi - oracle).abs() / oracle * 100.0
    );
}
