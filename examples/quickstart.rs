//! Quickstart: profile one workload, form phases, pick simulation points.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole SimProf pipeline on Spark WordCount: run the job on the
//! machine model with the sampling profiler attached, cluster the sampling
//! units into phases, select 20 simulation points by stratified random
//! sampling with optimal allocation, and compare the stratified CPI estimate
//! (with its 99.7 % confidence interval) against the oracle.

use simprof::core::{SimProf, SimProfConfig};
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};

fn main() {
    // 1. Profile: run WordCount on the Spark-like engine. The profiler cuts
    //    the executor thread's execution into fixed-size sampling units and
    //    snapshots its call stack ten times per unit (paper §III-A).
    let cfg = WorkloadConfig::paper(42);
    let out = Benchmark::WordCount.run_full(Framework::Spark, &cfg);
    println!(
        "profiled wc_sp: {} sampling units of {} instructions",
        out.trace.units.len(),
        out.trace.unit_instrs
    );

    // 2. Form phases: vectorize call stacks, select the top-K methods most
    //    correlated with IPC, k-means cluster, pick k by silhouette (§III-B).
    let analysis = SimProf::new(SimProfConfig { seed: 42, ..Default::default() })
        .analyze(&out.trace)
        .expect("valid trace");
    println!("phases: {}", analysis.k());
    for h in 0..analysis.k() {
        let s = &analysis.stats[h];
        let top = analysis.model.top_methods(h, 1);
        let method = top
            .first()
            .map(|&(m, _)| out.registry.name(simprof::engine::MethodId(m as u32)))
            .unwrap_or("?");
        println!(
            "  phase {h}: weight {:.1}%  mean CPI {:.3}  CoV {:.3}  — {method}",
            analysis.weights[h] * 100.0,
            s.mean,
            s.cov
        );
    }
    println!(
        "homogeneity (Fig. 6): population CoV {:.3}, weighted {:.3}, max {:.3}",
        analysis.cov.population, analysis.cov.weighted, analysis.cov.max
    );

    // 3. Sample: 20 simulation points by stratified random sampling with
    //    Neyman optimal allocation (§III-C, Eq. 1).
    let points = analysis.select_points(20, 7);
    println!("selected {} simulation points; allocation {:?}", points.len(), points.allocation);

    // 4. Estimate: the stratified CPI estimator with its 99.7 % CI (Eqs. 2–5).
    let est = analysis.estimate(&points, 3.0);
    let oracle = analysis.oracle_cpi();
    println!(
        "oracle CPI {:.4} | estimated {:.4} ± {:.4} (99.7% CI [{:.4}, {:.4}])",
        oracle,
        est.mean_cpi,
        3.0 * est.se,
        est.ci.0,
        est.ci.1
    );
    println!(
        "relative error: {:.2}% — simulating {}/{} units ({:.1}% of the job)",
        (est.mean_cpi - oracle).abs() / oracle * 100.0,
        points.len(),
        out.trace.units.len(),
        points.len() as f64 / out.trace.units.len() as f64 * 100.0
    );

    // 5. Budgeting: how many points would a 5 % / 2 % error bound need?
    println!(
        "required sample size (Fig. 8): {} points for 5% error, {} for 2%",
        analysis.required_size(3.0, 0.05),
        analysis.required_size(3.0, 0.02)
    );
}
