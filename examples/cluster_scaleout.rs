//! Scale-out profiling: SimProf on a multi-node cluster.
//!
//! ```text
//! cargo run --release --example cluster_scaleout
//! ```
//!
//! The paper's motivating pain point is cluster-scale simulation ("20 days
//! for simulating 10 seconds of a 64-core hadoop-based data analytic
//! workload"). This example profiles WordCount-on-Hadoop on 1-, 2- and
//! 4-node clusters (one LLC domain per node; a fraction (N−1)/N of the
//! shuffle crosses the network) and shows how SimProf's sampling budget
//! stays small while the job — and the cost of full simulation — grows.

use simprof::core::{SimProf, SimProfConfig};
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};

fn main() {
    let simprof = SimProf::new(SimProfConfig { seed: 42, ..Default::default() });
    println!(
        "{:>6} {:>7} {:>7} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "nodes", "tasks", "units", "CPI", "io share", "phases", "n@5%", "points/job"
    );
    for nodes in [1usize, 2, 4] {
        let cfg = WorkloadConfig::cluster(42, nodes);
        let out = Benchmark::WordCount.run_full(Framework::Hadoop, &cfg);
        let analysis = simprof.analyze(&out.trace).expect("valid trace");
        let stall: u64 = out.trace.units.iter().map(|u| u.counters.io_stall_cycles).sum();
        let cycles: u64 = out.trace.units.iter().map(|u| u.counters.cycles).sum();
        let n5 = analysis.required_size(3.0, 0.05);
        println!(
            "{:>6} {:>7} {:>7} {:>9.3} {:>8.1}% {:>8} {:>9} {:>9.1}%",
            nodes,
            out.total_tasks,
            out.trace.units.len(),
            analysis.oracle_cpi(),
            stall as f64 / cycles as f64 * 100.0,
            analysis.k(),
            n5,
            n5 as f64 / out.trace.units.len() as f64 * 100.0
        );
    }
    println!(
        "\nThe profiled executor thread sees a shrinking share of the job as it\n\
         spreads across nodes, and cross-node shuffles push the IO share up —\n\
         while SimProf's absolute point budget stays small even though the\n\
         cost of simulating the whole cluster grows with every node."
    );
}
