//! Framework comparison (paper §IV-F, Figs. 14–15).
//!
//! ```text
//! cargo run --release --example framework_compare
//! ```
//!
//! Profiles WordCount on both engines and contrasts their phase structure:
//! Spark's map-side combine (`Aggregator.combineValuesByKey`) fuses read,
//! tokenize, and reduce into one dominant stable phase, while Hadoop keeps
//! map, combine, and the quicksort spill as separate operations with very
//! different CPI variance.

use simprof::core::{SimProf, SimProfConfig};
use simprof::engine::MethodId;
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig::paper(42);
    let simprof = SimProf::new(SimProfConfig { seed: 42, ..Default::default() });

    for framework in [Framework::Spark, Framework::Hadoop] {
        let out = Benchmark::WordCount.run_full(framework, &cfg);
        let analysis = simprof.analyze(&out.trace).expect("valid trace");
        let label = match framework {
            Framework::Spark => "wc_sp (Fig. 14)",
            Framework::Hadoop => "wc_hp (Fig. 15)",
        };
        println!("\n=== {label} ===");
        println!(
            "{} units, oracle CPI {:.3}, {} phases",
            out.trace.units.len(),
            out.trace.oracle_cpi(),
            analysis.k()
        );
        // Phases in descending weight, with their signature methods.
        let mut order: Vec<usize> = (0..analysis.k()).collect();
        order.sort_by(|&a, &b| analysis.weights[b].partial_cmp(&analysis.weights[a]).unwrap());
        for h in order {
            let s = &analysis.stats[h];
            let methods: Vec<String> = analysis
                .model
                .top_methods(h, 2)
                .into_iter()
                .map(|(m, _)| short_name(out.registry.name(MethodId(m as u32))))
                .collect();
            println!(
                "  phase {h}: {:5.1}% of units | CPI {:.3} (CoV {:.3}) | {}",
                analysis.weights[h] * 100.0,
                s.mean,
                s.cov,
                methods.join(", ")
            );
        }
    }

    println!(
        "\nPaper's observations to compare against:\n\
         - wc_sp: the combineValuesByKey phase holds nearly all units with stable\n\
         \u{20}  CPI (operations fused by map-side reduce); the output phase is tiny.\n\
         - wc_hp: map (low CPI, low variance), combine (higher variance), and the\n\
         \u{20}  recursive quicksort (high variance) form separate phases."
    );
}

fn short_name(full: &str) -> String {
    let parts: Vec<&str> = full.rsplit('.').take(2).collect();
    parts.into_iter().rev().collect::<Vec<_>>().join(".")
}
